//! [`CompilationTask`] — the unit of work a [`Compiler`](crate::Compiler) pipeline
//! operates on — and [`PassData`], its typed key/value blackboard.

use std::collections::BTreeMap;

use qudit_analyze::OptimizeLevel;
use qudit_synth::{SynthesisConfig, SynthesisResult};
use qudit_tensor::Matrix;

/// A value a pass records on the [`PassData`] blackboard.
///
/// The closed set of variants keeps the blackboard deterministic to serialize (the
/// benchmark reports emit it as JSON) while covering everything the built-in passes
/// record: counters, seeds, flags, infidelities, and short labels.
#[derive(Debug, Clone, PartialEq)]
pub enum PassValue {
    /// A boolean flag (e.g. `"synthesis.skipped"`).
    Bool(bool),
    /// An unsigned counter or seed.
    U64(u64),
    /// A size or count.
    Usize(usize),
    /// A floating-point metric (e.g. an infidelity).
    F64(f64),
    /// A short textual annotation.
    Str(String),
}

impl From<bool> for PassValue {
    fn from(v: bool) -> Self {
        PassValue::Bool(v)
    }
}
impl From<u64> for PassValue {
    fn from(v: u64) -> Self {
        PassValue::U64(v)
    }
}
impl From<usize> for PassValue {
    fn from(v: usize) -> Self {
        PassValue::Usize(v)
    }
}
impl From<f64> for PassValue {
    fn from(v: f64) -> Self {
        PassValue::F64(v)
    }
}
impl From<&str> for PassValue {
    fn from(v: &str) -> Self {
        PassValue::Str(v.to_string())
    }
}
impl From<String> for PassValue {
    fn from(v: String) -> Self {
        PassValue::Str(v)
    }
}

impl std::fmt::Display for PassValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassValue::Bool(v) => write!(f, "{v}"),
            PassValue::U64(v) => write!(f, "{v}"),
            PassValue::Usize(v) => write!(f, "{v}"),
            PassValue::F64(v) => write!(f, "{v:.3e}"),
            PassValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// The typed key/value blackboard passes use to communicate metrics and decisions.
///
/// Keys are dot-namespaced by convention (`"synthesis.nodes_expanded"`,
/// `"partition.rounds"`, …). Iteration order is the key order (`BTreeMap`), so
/// serializing the blackboard is deterministic — the benchmark determinism diff
/// relies on this.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassData {
    entries: BTreeMap<String, PassValue>,
}

impl PassData {
    /// An empty blackboard.
    pub fn new() -> Self {
        PassData::default()
    }

    /// Records (or overwrites) a value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<PassValue>) {
        self.entries.insert(key.into(), value.into());
    }

    /// The raw value under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&PassValue> {
        self.entries.get(key)
    }

    /// The value under `key` as a count, if it is one.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        match self.entries.get(key) {
            Some(PassValue::Usize(v)) => Some(*v),
            Some(PassValue::U64(v)) => usize::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value under `key` as a float, if it is one.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.entries.get(key) {
            Some(PassValue::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value under `key` as a flag, if it is one.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.entries.get(key) {
            Some(PassValue::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// All entries in deterministic (key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PassValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// One compilation in flight: the target unitary, the synthesis configuration the
/// passes derive their settings from, the circuit-in-progress (a [`SynthesisResult`]
/// once some pass has produced one), and the [`PassData`] blackboard.
///
/// All fields are public: the pipeline is a blackboard architecture, and custom
/// passes are first-class citizens — they read and write the same state the built-in
/// passes do.
#[derive(Debug, Clone)]
pub struct CompilationTask {
    /// The unitary to compile.
    pub target: Matrix<f64>,
    /// The configuration every built-in pass derives its settings (radices, coupling,
    /// gate set, seeds, thresholds, thread budget) from.
    pub config: SynthesisConfig,
    /// The circuit-in-progress. `None` until a pass synthesizes one; later passes
    /// transform it in place.
    pub result: Option<SynthesisResult>,
    /// The typed key/value blackboard (per-pass metrics, seeds, decisions).
    pub data: PassData,
    /// Per-task override of the compiler's bytecode-optimization level
    /// ([`Compiler::optimize`](crate::Compiler::optimize)). `None` keeps the
    /// compiler's setting — this is how a serving front-end threads a
    /// per-request level through a shared, process-wide compiler.
    pub optimize: Option<OptimizeLevel>,
}

impl CompilationTask {
    /// A task for `target` under an explicit synthesis configuration.
    pub fn new(target: Matrix<f64>, config: SynthesisConfig) -> Self {
        CompilationTask { target, config, result: None, data: PassData::new(), optimize: None }
    }

    /// A task for `target` over qudits with the given radices, using the default
    /// configuration ([`SynthesisConfig::with_radices`]: linear coupling, default
    /// gate set).
    pub fn with_radices(target: Matrix<f64>, radices: Vec<usize>) -> Self {
        let config = SynthesisConfig::with_radices(radices);
        CompilationTask::new(target, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackboard_is_typed_and_deterministic() {
        let mut data = PassData::new();
        data.set("b.count", 3usize);
        data.set("a.flag", true);
        data.set("c.metric", 0.5f64);
        data.set("d.label", "hello");
        data.set("e.seed", 7u64);
        assert_eq!(data.get_usize("b.count"), Some(3));
        assert_eq!(data.get_bool("a.flag"), Some(true));
        assert_eq!(data.get_f64("c.metric"), Some(0.5));
        assert_eq!(data.get_usize("e.seed"), Some(7));
        assert_eq!(data.get_usize("a.flag"), None, "typed getters reject other variants");
        assert_eq!(data.get("missing"), None);
        let keys: Vec<&str> = data.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.flag", "b.count", "c.metric", "d.label", "e.seed"]);
        // Overwrite replaces in place.
        data.set("b.count", 9usize);
        assert_eq!(data.get_usize("b.count"), Some(9));
        assert_eq!(data.len(), 5);
        assert!(!data.is_empty());
    }

    #[test]
    fn task_construction() {
        let target = Matrix::<f64>::identity(4);
        let task = CompilationTask::with_radices(target, vec![2, 2]);
        assert_eq!(task.config.radices, vec![2, 2]);
        assert!(task.result.is_none());
        assert!(task.data.is_empty());
    }
}
