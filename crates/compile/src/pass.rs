//! The [`Pass`] trait and the [`PassContext`] handed to every pass invocation.

use qudit_qvm::ExpressionCache;
use qudit_synth::BackendKind;
use qudit_trace::TraceRegistry;

use crate::cancel::CancelToken;
use crate::error::CompileError;
use crate::task::CompilationTask;

/// One stage of a compilation pipeline.
///
/// A pass reads and mutates the [`CompilationTask`] blackboard: it may synthesize the
/// first circuit (`task.result`), transform an existing one, or only annotate
/// `task.data`. Passes must be deterministic for a fixed task (same seeds in, same
/// bytes out) — the engine's reproducibility guarantee extends pass-wise.
///
/// See the crate root for a runnable custom-pass example.
pub trait Pass: Send + Sync {
    /// The pass's stable display name (used for timings and metric namespaces).
    fn name(&self) -> &str;

    /// Runs the pass over `task`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the pass cannot proceed (invalid target or
    /// configuration, or a pipeline-order bug such as refining before synthesizing).
    /// Skipping cleanly — recording a `"<name>.skipped"` flag and returning `Ok` —
    /// is preferred whenever the pass simply does not apply.
    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError>;
}

/// Per-invocation services the [`Compiler`](crate::Compiler) provides to a pass:
/// today the process-wide [`ExpressionCache`] every stage compiles through.
///
/// The context is deliberately small — cross-pass *state* belongs on the
/// [`CompilationTask`] blackboard, so that saving a task snapshot reproduces a run.
#[derive(Debug)]
pub struct PassContext<'a> {
    cache: &'a ExpressionCache,
    backend: BackendKind,
    trace: TraceRegistry,
    cancel: CancelToken,
}

impl<'a> PassContext<'a> {
    /// A context borrowing the compiler's expression cache, running on the
    /// process-default TNVM execution tier with a disabled trace registry and no
    /// cancellation.
    pub fn new(cache: &'a ExpressionCache) -> Self {
        PassContext {
            cache,
            backend: BackendKind::default(),
            trace: TraceRegistry::disabled(),
            cancel: CancelToken::none(),
        }
    }

    /// Sets the TNVM execution tier this pass invocation runs under (builder style).
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the observability registry this pass invocation records into (builder
    /// style). The compiler installs its per-compilation registry here, so passes
    /// can record counters and open spans without going through the task config.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceRegistry) -> Self {
        self.trace = trace;
        self
    }

    /// The shared expression cache. Cloning it is cheap (`Arc` under the hood) and
    /// yields a handle to the *same* cache — nested pipelines (e.g. the partitioning
    /// pass's per-block re-synthesis) share compiled gates this way.
    pub fn cache(&self) -> &'a ExpressionCache {
        self.cache
    }

    /// The TNVM execution tier this pass invocation runs under. Informational for
    /// most passes — the tier is threaded through the task configuration — but
    /// available so a pass can report or branch on it.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The observability registry this pass invocation records into. Disabled (a
    /// no-op handle) unless the compiler installed one; cloning shares the sink, so
    /// nested pipelines fold their counters into the outer compilation's registry.
    pub fn trace(&self) -> &TraceRegistry {
        &self.trace
    }

    /// Sets the cancellation token this pass invocation polls (builder style). The
    /// compiler installs the token handed to
    /// [`Compiler::compile_with_cancel`](crate::Compiler::compile_with_cancel).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The compilation's cancellation token. The never-cancelling handle unless the
    /// driver installed one; long passes poll it at internal checkpoints (e.g. the
    /// partition pass between escalation rounds) so a deadline can abort work the
    /// per-pass boundary check would reach too late.
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// Convenience checkpoint: maps a failed token check to
    /// [`CompileError::Cancelled`] labelled with `checkpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Cancelled`] when the token has been cancelled or its
    /// deadline has passed.
    pub fn checkpoint(&self, checkpoint: &str) -> Result<(), CompileError> {
        self.cancel
            .check()
            .map_err(|reason| CompileError::Cancelled { after: checkpoint.to_string(), reason })
    }
}

/// The measured wall-clock time of one pass execution, reported by
/// [`Compiler::compile`](crate::Compiler::compile).
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass's [`Pass::name`].
    pub pass: String,
    /// Wall-clock duration of the pass's `run`.
    pub duration: std::time::Duration,
    /// The TNVM execution tier the pass ran under ([`BackendKind::name`]).
    pub backend: &'static str,
}
