//! Interleaved static verification: [`verify_task`] and the
//! [`Compiler::verify`](crate::Compiler::verify) knob.
//!
//! When verification is enabled, the compiler re-checks the circuit-in-progress
//! after *every* pass — each pass's output is an untrusted artifact until the
//! `qudit-analyze` verifier accepts it. [`VerifyLevel::Program`] lowers the circuit
//! to TNVM bytecode and runs the full per-instruction typing discipline plus plan
//! legality for the task's own execution tier; [`VerifyLevel::Full`] adds the
//! circuit structural validator, gate-set membership, and plan legality for every
//! registered tier.
//!
//! The default level comes from `OPENQUDIT_VERIFY` ([`VerifyLevel::from_env`]):
//! off in release (the determinism-diffed benchmark artifacts and
//! `BENCH_synthesis.json` medians see zero verification cost), `full` in CI's test
//! runs.
//!
//! What was verified is recorded in the `analyze.*` counters
//! (`analyze.circuits_verified`, `analyze.programs_verified`,
//! `analyze.instructions_checked`, `analyze.plans_verified`). These are pure counts
//! of checking work, identical across execution tiers — [`VerifyLevel::Program`]
//! verifies exactly one plan per program regardless of which tier that is, and
//! [`VerifyLevel::Full`] always verifies all registered tiers — so they fold into
//! the tier-invariant side of the determinism contract.

use qudit_analyze::{
    verify_backend, verify_circuit, verify_gateset, verify_program, AnalyzeError, VerifyLevel,
};
use qudit_network::{try_compile_network, TensorNetwork};
use qudit_synth::BackendKind;
use qudit_trace::TraceRegistry;

use crate::task::CompilationTask;

/// Verifies a task's circuit-in-progress at the given level, recording what was
/// checked into `trace`'s `analyze.*` counters.
///
/// A task with no result yet (nothing synthesized) verifies trivially — gating
/// passes that merely annotate the blackboard must not fail verification.
///
/// # Errors
///
/// Returns the first [`AnalyzeError`] violated, naming the offending instruction
/// or operation.
pub fn verify_task(
    task: &CompilationTask,
    level: VerifyLevel,
    trace: &TraceRegistry,
) -> Result<(), AnalyzeError> {
    if !level.is_enabled() {
        return Ok(());
    }
    let Some(result) = &task.result else {
        return Ok(());
    };
    let circuit = &result.circuit;
    if level == VerifyLevel::Full {
        verify_circuit(circuit)?;
        verify_gateset(circuit, &task.config.gate_set)?;
        trace.incr("analyze.circuits_verified");
    }
    let program = try_compile_network(&TensorNetwork::from_circuit(circuit))?;
    let report = verify_program(&program)?;
    trace.incr("analyze.programs_verified");
    trace.add("analyze.instructions_checked", report.instructions as u64);
    let tiers: Vec<BackendKind> = match level {
        VerifyLevel::Full => BackendKind::all().to_vec(),
        _ => vec![task.config.backend],
    };
    for kind in tiers {
        verify_backend(&program, kind)?;
        trace.incr("analyze.plans_verified");
    }
    Ok(())
}
