//! # qudit-compile
//!
//! The composable compiler-pass pipeline of the OpenQudit reproduction: a [`Compiler`]
//! executes an ordered sequence of [`Pass`]es over a [`CompilationTask`], sharing one
//! process-wide [`ExpressionCache`](qudit_qvm::ExpressionCache) so every stage — and
//! every *compilation* — amortizes JIT work. This is the architecture BQSKit-style
//! compilers are built on, and the extensibility seam the paper's DSL feeds: passes
//! communicate through the task's circuit-in-progress and its typed [`PassData`]
//! blackboard, so user-defined stages compose with the built-in ones.
//!
//! ## Built-in passes
//!
//! | Pass | Stage |
//! |---|---|
//! | [`PartitionPass`] | splits a wide target along a coupling cut, sketches it partition-first, re-synthesizes each block through a nested pipeline, and stitches |
//! | [`SynthesisPass`] | the bottom-up A*/beam search ([`qudit_synth::run_search`]) |
//! | [`RefinePass`] | speculative gate deletion ([`qudit_synth::refine_deletions`]) |
//! | [`FoldPass`] | symbolic constant snapping + gate constification ([`qudit_synth::fold_constants`]) |
//!
//! [`Compiler::default_pipeline`] is `synthesis → refine → fold` and reproduces the
//! deprecated `qudit_synth::synthesize_with_cache` byte for byte at the same seed;
//! [`Compiler::partitioned_pipeline`] puts [`PartitionPass`] in front, opening
//! >3-qudit targets while passing narrow ones through unchanged.
//!
//! ## Writing a custom pass
//!
//! A pass is any `Send + Sync` type implementing [`Pass`]. It can gate the pipeline,
//! transform the circuit-in-progress, or annotate the blackboard:
//!
//! ```
//! use qudit_circuit::gates;
//! use qudit_compile::{
//!     CompilationTask, CompileError, Compiler, Pass, PassContext, SynthesisPass,
//! };
//! use qudit_qvm::ExpressionCache;
//! use qudit_synth::SynthesisConfig;
//!
//! /// Annotates the blackboard with the target's dimension and rejects non-square
//! /// targets before any expensive stage runs.
//! struct TargetAudit;
//!
//! impl Pass for TargetAudit {
//!     fn name(&self) -> &str {
//!         "target-audit"
//!     }
//!
//!     fn run(
//!         &self,
//!         task: &mut CompilationTask,
//!         _ctx: &mut PassContext<'_>,
//!     ) -> Result<(), CompileError> {
//!         if task.target.rows() != task.target.cols() {
//!             return Err(CompileError::Pass {
//!                 pass: self.name().to_string(),
//!                 detail: "target must be square".to_string(),
//!             });
//!         }
//!         task.data.set("audit.dim", task.target.rows());
//!         Ok(())
//!     }
//! }
//!
//! let target = gates::cnot().to_matrix::<f64>(&[])?;
//! let compiler = Compiler::with_cache(ExpressionCache::new())
//!     .add_pass(TargetAudit)
//!     .add_pass(SynthesisPass);
//! let report = compiler.compile(CompilationTask::new(target, SynthesisConfig::qubits(2)))?;
//! assert!(report.result.success);
//! assert_eq!(report.data.get_usize("audit.dim"), Some(4));
//! assert_eq!(report.timings.len(), 2); // target-audit, synthesis
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Determinism
//!
//! Every built-in pass derives its seeds from the task's
//! [`SynthesisConfig`](qudit_synth::SynthesisConfig) and the structure it operates on
//! (block sequences, partition layouts) — never from scheduling — so two `compile`
//! calls with the same task produce byte-identical results at any thread count, and
//! the CI determinism diff runs partitioned workloads through this pipeline.

pub mod cancel;
pub mod compiler;
pub mod error;
pub mod optimize;
pub mod partition;
pub mod pass;
pub mod passes;
pub mod task;
pub mod verify;

pub use cancel::{CancelReason, CancelToken};
pub use compiler::{CompilationReport, Compiler};
pub use error::CompileError;
pub use optimize::optimize_task;
pub use partition::{PartitionConfig, PartitionPass};
pub use pass::{Pass, PassContext, PassTiming};
pub use passes::{FoldPass, OptimizePass, RefinePass, SynthesisPass, VerifyPass};
pub use qudit_analyze::{OptimizeLevel, VerifyLevel};
pub use qudit_synth::BackendKind;
pub use task::{CompilationTask, PassData, PassValue};
pub use verify::verify_task;
