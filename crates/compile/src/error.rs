//! The pipeline error type.

use qudit_synth::SynthesisError;

/// Errors produced while running a compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An engine stage (search, refinement, folding, instantiation plumbing) failed.
    Synthesis(SynthesisError),
    /// A pass rejected the task or detected a pipeline-order bug. The message names
    /// the pass.
    Pass {
        /// The [`Pass::name`](crate::Pass::name) of the failing pass.
        pass: String,
        /// What went wrong.
        detail: String,
    },
    /// The pipeline completed without any pass producing a circuit — an empty or
    /// misordered pipeline.
    NoResult,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Synthesis(e) => write!(f, "synthesis stage failed: {e}"),
            CompileError::Pass { pass, detail } => write!(f, "pass '{pass}' failed: {detail}"),
            CompileError::NoResult => {
                write!(f, "pipeline produced no result (no pass synthesized a circuit)")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Synthesis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynthesisError> for CompileError {
    fn from(e: SynthesisError) -> Self {
        CompileError::Synthesis(e)
    }
}

impl From<qudit_circuit::CircuitError> for CompileError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        CompileError::Synthesis(SynthesisError::Circuit(e))
    }
}
