//! The pipeline error type.

use qudit_analyze::AnalyzeError;
use qudit_network::BytecodeError;
use qudit_synth::SynthesisError;

use crate::cancel::CancelReason;

/// Errors produced while running a compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An engine stage (search, refinement, folding, instantiation plumbing) failed.
    Synthesis(SynthesisError),
    /// A pass rejected the task or detected a pipeline-order bug. The message names
    /// the pass.
    Pass {
        /// The [`Pass::name`](crate::Pass::name) of the failing pass.
        pass: String,
        /// What went wrong.
        detail: String,
    },
    /// The compilation was cancelled (explicitly, or by an expired deadline) at a
    /// cooperative checkpoint. A deliberate stop, not a defect: a server maps it to
    /// a timeout response, never to a crash.
    Cancelled {
        /// The checkpoint that observed the cancellation: `"start"`, a completed
        /// pass's name, or an intra-pass checkpoint label such as
        /// `"partition:round-2"`.
        after: String,
        /// Why the compilation was asked to stop.
        reason: CancelReason,
    },
    /// The partitioning front-end was handed a coupling graph it cannot partition
    /// over (no edges, or a block edge missing from the graph). Degenerate *input*,
    /// reported as a typed error so a bad request fails — not the process hosting it.
    DegenerateCoupling {
        /// What made the graph unusable.
        detail: String,
    },
    /// The AOT bytecode compiler rejected or emitted a malformed program
    /// (via the fallible [`qudit_network::try_compile_network`] path).
    Bytecode(BytecodeError),
    /// The static verifier rejected an intermediate artifact. Names the pass whose
    /// output failed and carries the typed violation (which in turn names the
    /// offending instruction or operation).
    Verify {
        /// The [`Pass::name`](crate::Pass::name) after which verification failed.
        after: String,
        /// The rejection, down to the offending instruction.
        violation: AnalyzeError,
    },
    /// The pipeline completed without any pass producing a circuit — an empty or
    /// misordered pipeline.
    NoResult,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Synthesis(e) => write!(f, "synthesis stage failed: {e}"),
            CompileError::Pass { pass, detail } => write!(f, "pass '{pass}' failed: {detail}"),
            CompileError::Cancelled { after, reason } => {
                write!(f, "compilation {reason} (checkpoint: {after})")
            }
            CompileError::DegenerateCoupling { detail } => {
                write!(f, "degenerate coupling graph: {detail}")
            }
            CompileError::Bytecode(e) => write!(f, "bytecode compilation failed: {e}"),
            CompileError::Verify { after, violation } => {
                write!(f, "verification failed after pass '{after}': {violation}")
            }
            CompileError::NoResult => {
                write!(f, "pipeline produced no result (no pass synthesized a circuit)")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Synthesis(e) => Some(e),
            CompileError::Bytecode(e) => Some(e),
            CompileError::Verify { violation, .. } => Some(violation),
            _ => None,
        }
    }
}

impl From<BytecodeError> for CompileError {
    fn from(e: BytecodeError) -> Self {
        CompileError::Bytecode(e)
    }
}

impl From<SynthesisError> for CompileError {
    fn from(e: SynthesisError) -> Self {
        CompileError::Synthesis(e)
    }
}

impl From<qudit_circuit::CircuitError> for CompileError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        CompileError::Synthesis(SynthesisError::Circuit(e))
    }
}
