//! The built-in passes wrapping the synthesis engine's stages: [`SynthesisPass`]
//! (A*/beam search), [`RefinePass`] (speculative gate deletion), and [`FoldPass`]
//! (symbolic constant snapping + gate constification).
//!
//! Each pass derives its settings deterministically from the task's
//! [`SynthesisConfig`](qudit_synth::SynthesisConfig) unless an explicit configuration
//! is supplied, so the default pipeline reproduces the legacy monolithic entry point
//! byte for byte at the same seed.

use qudit_analyze::{OptimizeLevel, VerifyLevel};
use qudit_synth::{fold_constants, refine_deletions, run_search, FoldConfig, RefineConfig};

use crate::error::CompileError;
use crate::optimize::optimize_task;
use crate::pass::{Pass, PassContext};
use crate::task::CompilationTask;
use crate::verify::verify_task;

/// The bottom-up A*/beam search stage ([`qudit_synth::run_search`]).
///
/// Skips (recording `"synthesis.skipped"`) when an earlier pass — e.g.
/// [`PartitionPass`](crate::PartitionPass) — already produced a result, so the
/// standard tail of a pipeline composes cleanly behind width-dependent front-ends.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisPass;

impl Pass for SynthesisPass {
    fn name(&self) -> &str {
        "synthesis"
    }

    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError> {
        if task.result.is_some() {
            task.data.set("synthesis.skipped", true);
            return Ok(());
        }
        let result = run_search(&task.target, &task.config, ctx.cache())?;
        task.data.set("synthesis.nodes_expanded", result.nodes_expanded);
        task.data.set("synthesis.blocks", result.blocks.len());
        task.data.set("synthesis.infidelity", result.infidelity);
        task.result = Some(result);
        Ok(())
    }
}

/// The speculative gate-deletion stage ([`qudit_synth::refine_deletions`]).
///
/// Runs only on successful results with [`SynthesisConfig::refine`] enabled
/// (recording a skip flag otherwise); without an explicit configuration it derives
/// [`SynthesisConfig::refine_config`] from the task — the exact derivation the legacy
/// monolith used.
///
/// [`SynthesisConfig::refine`]: qudit_synth::SynthesisConfig::refine
/// [`SynthesisConfig::refine_config`]: qudit_synth::SynthesisConfig::refine_config
#[derive(Debug, Clone, Default)]
pub struct RefinePass {
    config: Option<RefineConfig>,
}

impl RefinePass {
    /// A refine pass with an explicit configuration instead of the task-derived one.
    pub fn with_config(config: RefineConfig) -> Self {
        RefinePass { config: Some(config) }
    }
}

impl Pass for RefinePass {
    fn name(&self) -> &str {
        "refine"
    }

    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError> {
        let Some(result) = task.result.as_ref() else {
            return Err(CompileError::Pass {
                pass: self.name().to_string(),
                detail: "no synthesized result to refine; order a synthesis pass first".to_string(),
            });
        };
        if !task.config.refine {
            task.data.set("refine.disabled", true);
            return Ok(());
        }
        if !result.success {
            task.data.set("refine.skipped_unsuccessful", true);
            return Ok(());
        }
        let config = self.config.clone().unwrap_or_else(|| task.config.refine_config());
        let refined = refine_deletions(result, &task.target, &config, ctx.cache())?;
        task.data.set("refine.blocks_deleted", refined.blocks_deleted);
        task.data.set("refine.infidelity", refined.infidelity);
        task.result = Some(refined);
        Ok(())
    }
}

/// The symbolic constant-folding stage ([`qudit_synth::fold_constants`]): snaps
/// parameters that landed on symbolic constants (0, ±π/2, ±π, ±2π), verifies the
/// substituted expressions e-graph-fold consistently, and **constifies** gates whose
/// parameters all snapped — rewriting them as constant gate applications so the JIT
/// compiles cheaper, constant-folded expressions. Records
/// `"fold.params_folded"` / `"fold.gates_constified"`.
#[derive(Debug, Clone, Default)]
pub struct FoldPass {
    config: Option<FoldConfig>,
}

impl FoldPass {
    /// A fold pass with an explicit configuration instead of the task-derived one
    /// (constification enabled).
    pub fn with_config(config: FoldConfig) -> Self {
        FoldPass { config: Some(config) }
    }
}

impl Pass for FoldPass {
    fn name(&self) -> &str {
        "fold"
    }

    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError> {
        let Some(result) = task.result.as_ref() else {
            return Err(CompileError::Pass {
                pass: self.name().to_string(),
                detail: "no synthesized result to fold; order a synthesis pass first".to_string(),
            });
        };
        if !task.config.refine {
            task.data.set("fold.disabled", true);
            return Ok(());
        }
        if !result.success {
            task.data.set("fold.skipped_unsuccessful", true);
            return Ok(());
        }
        let config = self.config.clone().unwrap_or_else(|| task.config.fold_config());
        let (prior_folded, prior_constified) = (result.params_folded, result.gates_constified);
        let folded = fold_constants(result, &task.target, &config, ctx.cache())?;
        task.data.set("fold.params_folded", folded.params_folded);
        task.data.set("fold.gates_constified", folded.gates_constified);
        // `fold_constants` takes no instantiate config, so the fold stage's counters
        // are recorded here from the result deltas (this pass runs at most once per
        // pipeline, but a custom pipeline may fold repeatedly — hence deltas).
        let delta_folded = folded.params_folded.saturating_sub(prior_folded);
        let delta_constified = folded.gates_constified.saturating_sub(prior_constified);
        if delta_folded > 0 {
            ctx.trace().add("fold.params_folded", delta_folded as u64);
        }
        if delta_constified > 0 {
            ctx.trace().add("fold.gates_constified", delta_constified as u64);
        }
        task.result = Some(folded);
        Ok(())
    }
}

/// The static-verification stage: re-checks the circuit-in-progress with the
/// `qudit-analyze` verifier (see [`verify_task`]).
///
/// Usually verification is enabled for the *whole* pipeline with the
/// [`Compiler::verify`](crate::Compiler::verify) knob, which re-checks after every
/// pass without adding timing entries. This explicit pass exists for custom
/// pipelines that want verification at one specific point — e.g. once, after a
/// trusted tail — or at a different level than the interleaved knob. A task with
/// no result yet verifies trivially.
#[derive(Debug, Clone, Copy)]
pub struct VerifyPass {
    level: VerifyLevel,
}

impl VerifyPass {
    /// A verify pass at an explicit level ([`VerifyLevel::Off`] makes it a no-op).
    pub fn new(level: VerifyLevel) -> Self {
        VerifyPass { level }
    }

    /// The level this pass verifies at.
    pub fn level(&self) -> VerifyLevel {
        self.level
    }
}

impl Default for VerifyPass {
    /// Defaults to [`VerifyLevel::Full`]: adding the pass explicitly is the opt-in,
    /// unlike the environment-driven interleaved knob.
    fn default() -> Self {
        VerifyPass { level: VerifyLevel::Full }
    }
}

impl Pass for VerifyPass {
    fn name(&self) -> &str {
        "verify"
    }

    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError> {
        verify_task(task, self.level, ctx.trace())
            .map_err(|violation| CompileError::Verify { after: self.name().to_string(), violation })
    }
}

/// The verified bytecode-optimization stage: runs `qudit-analyze`'s
/// translation-validated optimizer over the circuit-in-progress's TNVM bytecode
/// (see [`optimize_task`]).
///
/// Usually optimization is enabled pipeline-wide with the
/// [`Compiler::optimize`](crate::Compiler::optimize) knob, which runs it once
/// after the final pass. This explicit pass exists for custom pipelines that
/// want the optimizer (and its counters/blackboard stats) at a specific point —
/// e.g. between a synthesis front-end and an evaluation-heavy tail. A task with
/// no result yet is a no-op, and a rejected candidate never fails the pass.
#[derive(Debug, Clone, Copy)]
pub struct OptimizePass {
    level: OptimizeLevel,
}

impl OptimizePass {
    /// An optimize pass at an explicit level ([`OptimizeLevel::Off`] makes it a
    /// no-op).
    pub fn new(level: OptimizeLevel) -> Self {
        OptimizePass { level }
    }

    /// The level this pass optimizes at.
    pub fn level(&self) -> OptimizeLevel {
        self.level
    }
}

impl Default for OptimizePass {
    /// Defaults to [`OptimizeLevel::Full`]: adding the pass explicitly is the
    /// opt-in, unlike the environment-driven pipeline knob.
    fn default() -> Self {
        OptimizePass { level: OptimizeLevel::Full }
    }
}

impl Pass for OptimizePass {
    fn name(&self) -> &str {
        "optimize"
    }

    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError> {
        optimize_task(task, self.level, ctx.cache(), ctx.trace())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use qudit_circuit::{builders, gates, OpParams};
    use qudit_optimize::InstantiateConfig;
    use qudit_qvm::ExpressionCache;
    use qudit_synth::{SynthesisConfig, SynthesisResult};

    #[test]
    fn refine_and_fold_demand_a_prior_result() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        for compiler in [
            Compiler::with_cache(ExpressionCache::new()).add_pass(RefinePass::default()),
            Compiler::with_cache(ExpressionCache::new()).add_pass(FoldPass::default()),
        ] {
            let task = CompilationTask::new(target.clone(), SynthesisConfig::qubits(2));
            match compiler.compile(task) {
                Err(CompileError::Pass { detail, .. }) => {
                    assert!(detail.contains("synthesis pass first"), "{detail}")
                }
                other => panic!("expected a pipeline-order error, got {other:?}"),
            }
        }
    }

    #[test]
    fn refine_disabled_passes_through_with_a_flag() {
        let target = gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let mut config = SynthesisConfig::qubits(2);
        config.refine = false;
        let report = Compiler::with_cache(ExpressionCache::new())
            .default_passes()
            .compile(CompilationTask::new(target, config))
            .unwrap();
        assert_eq!(report.data.get_bool("refine.disabled"), Some(true));
        assert_eq!(report.data.get_bool("fold.disabled"), Some(true));
        assert_eq!(report.result.blocks_deleted, 0);
        assert_eq!(report.result.refined_infidelity, None);
    }

    #[test]
    fn fold_pass_constifies_fully_snapped_gates() {
        // A hand-built optimum exactly on symbolic constants, perturbed by 1e-9: the
        // fold snaps every parameter, so constification must rewrite every
        // parameterized gate as a constant application and empty the parameter vector.
        let cache = ExpressionCache::new();
        let circuit = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
        let exact: Vec<f64> = (0..circuit.num_params())
            .map(|k| match k % 3 {
                0 => 0.0,
                1 => std::f64::consts::PI,
                _ => std::f64::consts::FRAC_PI_2,
            })
            .collect();
        let target = circuit.unitary::<f64>(&exact).unwrap();
        let perturbed: Vec<f64> =
            exact.iter().enumerate().map(|(k, &v)| v + 1e-9 * (k as f64 + 1.0)).collect();
        let result = SynthesisResult {
            blocks: vec![(0, 1)],
            params: perturbed,
            infidelity: 1e-12,
            success: true,
            nodes_expanded: 0,
            blocks_deleted: 0,
            refined_infidelity: None,
            params_folded: 0,
            gates_constified: 0,
            circuit,
        };
        let mut config = SynthesisConfig::qubits(2);
        config.instantiate = InstantiateConfig { starts: 2, ..Default::default() };
        let mut task = CompilationTask::new(target.clone(), config);
        task.result = Some(result);
        let report =
            Compiler::with_cache(cache).add_pass(FoldPass::default()).compile(task).unwrap();
        let folded = &report.result;
        assert_eq!(folded.params_folded, 12);
        // The four U3 gates constify; the parameterless CNOT stays as-is.
        assert_eq!(folded.gates_constified, 4);
        assert_eq!(report.data.get_usize("fold.gates_constified"), Some(4));
        assert_eq!(folded.params.len(), 0);
        assert_eq!(folded.circuit.num_params(), 0);
        assert!(folded.infidelity < 1e-10);
        let constants = folded
            .circuit
            .ops()
            .iter()
            .filter(|op| matches!(op.params, OpParams::Constant(_)))
            .count();
        assert_eq!(constants, 4);
        // The constified circuit still evaluates to the target through the reference
        // evaluator (an independent path from the TNVM that vetted the rewrite).
        let unitary = folded.circuit.unitary::<f64>(&[]).unwrap();
        assert!(
            qudit_optimize::hs_infidelity(&target, &unitary) < 1e-10,
            "constified circuit diverged from the target"
        );
    }
}
