//! Verified bytecode optimization in the pipeline: [`optimize_task`] and the
//! [`Compiler::optimize`](crate::Compiler::optimize) knob.
//!
//! When optimization is enabled the compiler runs `qudit-analyze`'s
//! translation-validated optimizer ([`qudit_analyze::optimize_program`]) over the
//! final circuit's TNVM bytecode once, after the last pass (and after its
//! verification): dead-instruction elimination, common-subexpression elimination,
//! and — at [`OptimizeLevel::Full`] — buffer coalescing. Unlike verification,
//! which re-checks after *every* pass, optimization runs once at the end: the
//! passes communicate through the circuit-in-progress, and the bytecode worth
//! optimizing is the final circuit's.
//!
//! The optimizer never fails a compilation. A candidate that translation
//! validation rejects is dropped — the original program stands — and the
//! rejection lands in the `analyze.optimize.rejected` counter (always present,
//! even at zero, so `/metrics` consumers can alert on it) plus the blackboard's
//! `optimize.rejected` annotation. What it did land in the `analyze.optimize.*`
//! counters and the `optimize.*` blackboard keys, all deterministic and
//! tier-invariant.
//!
//! The default level comes from `OPENQUDIT_OPTIMIZE`
//! ([`OptimizeLevel::from_env`]); a task can override the compiler's level
//! through [`CompilationTask::optimize`] (the per-request seam `qudit-serve`
//! uses).

use qudit_analyze::{optimize_program, OptimizeLevel};
use qudit_network::{try_compile_network, TensorNetwork};
use qudit_qvm::ExpressionCache;
use qudit_trace::TraceRegistry;

use crate::error::CompileError;
use crate::task::CompilationTask;

/// Optimizes the task's final circuit bytecode at the given level, recording
/// outcome counters into `trace` and stats onto the task blackboard.
///
/// A task with no result yet is a no-op. The optimized program is not stored —
/// the task's artifact is the circuit, and any consumer recompiles the network —
/// but the run proves the optimization sound (translation validation) and its
/// stats feed the report. Returns the rejection reason observed, if any, so
/// callers can surface it.
///
/// # Errors
///
/// Returns [`CompileError::Bytecode`] only when the circuit itself fails to
/// lower to bytecode — optimizer rejections are *not* errors (the original
/// program stands).
pub fn optimize_task(
    task: &mut CompilationTask,
    level: OptimizeLevel,
    cache: &ExpressionCache,
    trace: &TraceRegistry,
) -> Result<Option<String>, CompileError> {
    let level = task.optimize.unwrap_or(level);
    if !level.is_enabled() {
        return Ok(None);
    }
    let Some(result) = &task.result else {
        return Ok(None);
    };
    let program = try_compile_network(&TensorNetwork::from_circuit(&result.circuit))?;
    let outcome = optimize_program(&program, level, cache);
    let stats = &outcome.stats;
    trace.incr("analyze.optimize.programs");
    trace.add("analyze.optimize.dce_removed", stats.dce_removed as u64);
    trace.add("analyze.optimize.cse_removed", stats.cse_removed as u64);
    trace.add(
        "analyze.optimize.arena_saved",
        stats.arena_before.saturating_sub(stats.arena_after) as u64,
    );
    // Always touch the rejection counter so the key exists (at zero) in every
    // metrics snapshot — absence and "never rejected" must be distinguishable.
    trace.add("analyze.optimize.rejected", u64::from(stats.rejected.is_some()));
    task.data.set("optimize.level", level.name());
    task.data.set("optimize.instructions_before", stats.instructions_before);
    task.data.set("optimize.instructions_after", stats.instructions_after);
    task.data.set("optimize.dce_removed", stats.dce_removed);
    task.data.set("optimize.cse_removed", stats.cse_removed);
    task.data.set("optimize.arena_before", stats.arena_before);
    task.data.set("optimize.arena_after", stats.arena_after);
    if let Some(reason) = &stats.rejected {
        task.data.set("optimize.rejected", reason.clone());
    }
    Ok(stats.rejected.clone())
}
