//! Cooperative cancellation for long compilations.
//!
//! A [`CancelToken`] is a cheap cloneable handle a *driver* (a server's request
//! handler, a CLI watchdog) uses to stop a compilation that is already running: it
//! can be cancelled explicitly ([`CancelToken::cancel`]) or carry a wall-clock
//! deadline fixed at creation ([`CancelToken::with_deadline`]). Cancellation is
//! **cooperative** — nothing is interrupted preemptively. The
//! [`Compiler`](crate::Compiler) checks the token at every pass boundary, and
//! long-running passes ([`PartitionPass`](crate::PartitionPass) between escalation
//! rounds and nested per-block pipelines) poll it at their own internal checkpoints
//! via [`PassContext::cancel`](crate::PassContext::cancel), so a cancelled
//! compilation stops at the next checkpoint with
//! [`CompileError::Cancelled`](crate::CompileError::Cancelled) instead of running to
//! completion.
//!
//! The default handle ([`CancelToken::none`]) never cancels and costs nothing to
//! check, mirroring the disabled [`TraceRegistry`](qudit_trace::TraceRegistry)
//! pattern: plumbed-through code never branches on an `Option`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a compilation was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The driver cancelled explicitly (client disconnect, shutdown, supersession).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Cancelled => f.write_str("cancelled"),
            CancelReason::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Absolute deadline, fixed at token creation (`None` = no deadline).
    deadline: Option<Instant>,
}

/// A cheap cloneable cancellation handle — or the never-cancelling default.
///
/// All clones share the same state: cancelling any clone cancels them all, which is
/// how a server hands one token to both its timeout watchdog and the worker running
/// the compile. See the [module docs](self) for the cooperative-checkpoint contract.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// The never-cancelling handle (identical to [`Default`]): every check passes,
    /// at the cost of one pointer test.
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(TokenInner { cancelled: AtomicBool::new(false), deadline: None })),
        }
    }

    /// A token that additionally cancels once `budget` has elapsed from *now*.
    ///
    /// The deadline is absolute: a server creates the token at request admission, so
    /// the budget covers queue wait as well as compute.
    pub fn with_deadline(budget: Duration) -> Self {
        // detlint: allow(wall-clock) — the request-timing gate: deadlines are
        // wall-clock by definition and never feed a compiled artifact
        let deadline = Instant::now().checked_add(budget);
        CancelToken {
            inner: Some(Arc::new(TokenInner { cancelled: AtomicBool::new(false), deadline })),
        }
    }

    /// Requests cancellation. Idempotent; takes effect at the next checkpoint.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether any check from now on will fail.
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// The checkpoint primitive: `Ok` to keep going, `Err` with the reason to stop.
    ///
    /// Explicit cancellation wins over an expired deadline when both hold.
    pub fn check(&self) -> Result<(), CancelReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(CancelReason::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            // detlint: allow(wall-clock) — the request-timing gate: comparing
            // against the admission-time deadline is the token's whole purpose
            if Instant::now() >= deadline {
                return Err(CancelReason::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_token_never_cancels() {
        let token = CancelToken::none();
        assert!(token.check().is_ok());
        token.cancel(); // no-op on the disabled handle
        assert!(!token.is_cancelled());
    }

    #[test]
    fn explicit_cancellation_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(token.check().is_ok());
        clone.cancel();
        assert_eq!(token.check(), Err(CancelReason::Cancelled));
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert_eq!(token.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn deadlines_expire_and_report_their_reason() {
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(expired.check(), Err(CancelReason::DeadlineExceeded));
        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(generous.check().is_ok());
        // Explicit cancellation outranks the (still unexpired) deadline.
        generous.cancel();
        assert_eq!(generous.check(), Err(CancelReason::Cancelled));
    }
}
