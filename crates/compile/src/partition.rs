//! [`PartitionPass`] — the width-scaling front-end: splits a wide target along a
//! coupling-graph cut and compiles it partition-first, opening the >3-qudit workload
//! the monolithic search cannot practically reach.
//!
//! The pass works in two phases:
//!
//! 1. **Partitioned sketch.** The qudits are grouped along the coupling graph
//!    (deterministic BFS growth, groups of at most
//!    [`PartitionConfig::group_size`] qudits); the coupling edges split into
//!    *internal* edges (both endpoints in one group) and *cut* edges (crossing
//!    groups). The pass then instantiates an escalating sequence of partitioned
//!    templates — each round appends one building block per internal edge, then one
//!    per cut edge — warm-starting every round from the previous optimum, until the
//!    instantiated Hilbert–Schmidt infidelity drops below the success threshold.
//!    Structure discovery is thereby replaced by the partition layout: no search tree
//!    over the exponentially wide candidate space is ever built, which is exactly why
//!    this front-end scales past the A* engine's practical width limit.
//! 2. **Per-block re-synthesis and stitching.** Each entangling block of the sketch
//!    is a ≤ 2-qudit sub-unitary; the pass re-synthesizes every one of them through a
//!    **nested pipeline** (a `Compiler` with the standard synthesis → refine → fold
//!    passes, sharing the outer expression cache). Blocks whose re-synthesis needs
//!    *no* entangler are provably local: they are stitched out of the wide template
//!    (deleted and warm-start re-instantiated through the exact parameter mapping),
//!    shrinking the sketch before the ordinary [`RefinePass`](crate::RefinePass) /
//!    [`FoldPass`](crate::FoldPass) tail polishes the survivor.
//!
//! Narrow targets (width ≤ [`PartitionConfig::max_width`]) skip the pass entirely, so
//! it composes transparently in front of the standard pipeline.
//!
//! Every seed derives deterministically from the task configuration and the block
//! layout, so partitioned compilation inherits the engine's byte-for-byte
//! reproducibility guarantee.

use std::collections::BTreeMap;

use qudit_circuit::builders;
use qudit_optimize::{instantiate_circuit, instantiate_circuit_mapped};
use qudit_synth::{
    block_unitary, candidate_seed, validate_target, CouplingGraph, SynthesisConfig, SynthesisResult,
};

use crate::compiler::Compiler;
use crate::error::CompileError;
use crate::pass::{Pass, PassContext};
use crate::task::CompilationTask;

/// Deterministic index of every coupling edge, used to derive per-block seeds.
///
/// Wrapping the map keeps the lookup *fallible*: a block edge that is not in the
/// coupling graph is a degenerate input (or an internal invariant break), and in a
/// long-lived server it must fail the one request carrying it — as
/// [`CompileError::DegenerateCoupling`] — never panic the process.
struct EdgeIndex(BTreeMap<(usize, usize), usize>);

impl EdgeIndex {
    fn new(coupling: &CouplingGraph) -> Self {
        EdgeIndex(coupling.edges().iter().enumerate().map(|(i, &e)| (e, i)).collect())
    }

    fn get(&self, edge: (usize, usize)) -> Result<usize, CompileError> {
        self.0.get(&edge).copied().ok_or_else(|| CompileError::DegenerateCoupling {
            detail: format!("block edge {edge:?} is not an edge of the coupling graph"),
        })
    }
}

/// Seed salt separating the partitioned rounds' instantiations from every other stage.
const ROUND_SALT: u64 = 0x9a27_7171_0bed_0005;
/// Seed salt for the nested per-block re-synthesis pipelines.
const NESTED_SALT: u64 = 0x5717_7c4e_d00d_0007;
/// Seed salt for stitch (deletion) re-instantiations.
const STITCH_SALT: u64 = 0xc0de_57e9_1447_000b;

/// Configuration of [`PartitionPass`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Widths at or below this skip the pass (the plain search handles them);
    /// wider targets are partitioned. Default 3 — the practical reach of the
    /// monolithic A* engine.
    pub max_width: usize,
    /// Maximum number of qudits per partition group. Default 2.
    pub group_size: usize,
    /// Maximum number of escalation rounds (each adds one building block per
    /// coupling edge). Default 4.
    pub max_rounds: usize,
    /// Whether to run phase 2 — nested per-block re-synthesis and stitching — on a
    /// successful sketch. Default `true`.
    pub resynthesize: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { max_width: 3, group_size: 2, max_rounds: 4, resynthesize: true }
    }
}

/// The partitioning front-end pass. See the [module docs](self) for the algorithm.
#[derive(Debug, Clone, Default)]
pub struct PartitionPass {
    config: PartitionConfig,
}

impl PartitionPass {
    /// A partition pass with an explicit configuration.
    pub fn new(config: PartitionConfig) -> Self {
        PartitionPass { config }
    }
}

impl Pass for PartitionPass {
    fn name(&self) -> &str {
        "partition"
    }

    fn run(
        &self,
        task: &mut CompilationTask,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), CompileError> {
        if task.result.is_some() {
            task.data.set("partition.skipped", true);
            return Ok(());
        }
        let n = task.config.radices.len();
        if n <= self.config.max_width {
            task.data.set("partition.skipped_narrow", true);
            return Ok(());
        }
        validate_target(&task.target, &task.config)?;

        // Phase 1: group the qudits along the coupling graph and classify the edges.
        let groups = partition_groups(&task.config.coupling, self.config.group_size.max(1));
        let mut group_of = vec![0usize; n];
        for (g, members) in groups.iter().enumerate() {
            for &q in members {
                group_of[q] = g;
            }
        }
        let mut internal: Vec<(usize, usize)> = Vec::new();
        let mut cut: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in task.config.coupling.edges() {
            if group_of[a] == group_of[b] {
                internal.push((a, b));
            } else {
                cut.push((a, b));
            }
        }
        let round_edges: Vec<(usize, usize)> = internal.iter().chain(cut.iter()).copied().collect();
        if round_edges.is_empty() {
            // A single-node or edgeless coupling graph: nothing to partition over.
            // Degenerate input fails this task with a typed error, never the process.
            return Err(CompileError::DegenerateCoupling {
                detail: format!("coupling graph over {n} qudits has no edges to partition over"),
            });
        }
        task.data.set("partition.width", n);
        task.data.set("partition.groups", groups.len());
        task.data.set("partition.groups_layout", format!("{groups:?}"));
        task.data.set("partition.cut_edges", cut.len());

        // Escalating-round sketch instantiation, warm-started round over round.
        let instantiate_base = task.config.frontier_instantiate_config();
        let edge_index = EdgeIndex::new(&task.config.coupling);
        let mut blocks: Vec<(usize, usize)> = Vec::new();
        let mut warm: Option<Vec<f64>> = None;
        let mut attempts = 0usize;
        let mut best: Option<(SynthesisResult, usize)> = None;
        for round in 1..=self.config.max_rounds.max(1) {
            // Cooperative cancellation checkpoint: rounds are the pass's unit of
            // work, so an expired deadline aborts before the next instantiation.
            ctx.checkpoint(&format!("partition:round-{round}"))?;
            blocks.extend(round_edges.iter().copied());
            let circuit =
                builders::pqc_template_with(&task.config.radices, &blocks, &task.config.gate_set)?;
            let block_indices: Vec<usize> =
                blocks.iter().map(|&e| edge_index.get(e)).collect::<Result<_, _>>()?;
            let mut icfg = instantiate_base.clone();
            icfg.seed = candidate_seed(instantiate_base.seed ^ ROUND_SALT, &block_indices);
            icfg.warm_start = warm.clone();
            let outcome = instantiate_circuit(&circuit, &task.target, &icfg, ctx.cache());
            attempts += 1;
            let better =
                best.as_ref().map(|(b, _)| outcome.infidelity < b.infidelity).unwrap_or(true);
            if better {
                best = Some((
                    SynthesisResult {
                        blocks: blocks.clone(),
                        params: outcome.params.clone(),
                        infidelity: outcome.infidelity,
                        success: outcome.infidelity < task.config.success_threshold,
                        circuit,
                        nodes_expanded: attempts,
                        blocks_deleted: 0,
                        refined_infidelity: None,
                        params_folded: 0,
                        gates_constified: 0,
                    },
                    round,
                ));
            }
            warm = Some(outcome.params);
            if best.as_ref().is_some_and(|(b, _)| b.success) {
                break;
            }
        }
        let Some((mut result, rounds)) = best else {
            // Defensive: the escalation loop always runs at least one round over a
            // non-empty edge set, but a future config hole must fail typed, not panic.
            return Err(CompileError::DegenerateCoupling {
                detail: "no escalation round produced a candidate".to_string(),
            });
        };
        result.nodes_expanded = attempts;
        task.data.set("partition.rounds", rounds);
        task.data.set("partition.attempts", attempts);
        task.data.set("partition.sketch_infidelity", result.infidelity);

        // Phase 2: re-synthesize every block through a nested pipeline and stitch out
        // the ones that proved local.
        if self.config.resynthesize && result.success {
            let mut local_blocks: Vec<usize> = Vec::new();
            let mut nested_nodes = 0usize;
            for i in 0..result.blocks.len() {
                ctx.checkpoint(&format!("partition:block-{i}"))?;
                let sub_target = block_unitary(&result.circuit, &result.params, i)?;
                let entangler = &result.circuit.ops()[n + 3 * i];
                let (a, b) = (entangler.location[0], entangler.location[1]);
                let mut nested = SynthesisConfig::with_radices(vec![
                    task.config.radices[a],
                    task.config.radices[b],
                ]);
                nested.gate_set = task.config.gate_set.clone();
                nested.max_blocks = 1;
                nested.max_nodes = 4;
                nested.success_threshold = task.config.success_threshold;
                nested.instantiate = task.config.instantiate.clone();
                nested.threads = task.config.threads;
                nested.seed = candidate_seed(task.config.seed ^ NESTED_SALT, &[i]);
                // The nested pipeline shares the outer compilation's registry, so
                // per-block re-synthesis counters (and spans) fold into the same
                // report. Blocks are re-synthesized serially — deterministic order.
                // The nested pipeline inherits the outer compilation's cancellation
                // token, so a deadline cuts through per-block re-synthesis too.
                let nested_report = Compiler::with_cache(ctx.cache().clone())
                    .trace(ctx.trace().clone())
                    .default_passes()
                    .compile_with_cancel(CompilationTask::new(sub_target, nested), ctx.cancel())?;
                nested_nodes += nested_report.result.nodes_expanded;
                if nested_report.result.success && nested_report.result.blocks.is_empty() {
                    local_blocks.push(i);
                }
            }
            task.data.set("partition.blocks_resynthesized", result.blocks.len());
            task.data.set("partition.nested_nodes_expanded", nested_nodes);

            let mut stitched_out = 0usize;
            if !local_blocks.is_empty() {
                // Batch first — one re-instantiation usually absorbs every local
                // block — then one at a time for stragglers.
                if let Some(next) = attempt_stitch(task, &result, &local_blocks, ctx, &edge_index)?
                {
                    stitched_out = local_blocks.len();
                    result = next;
                } else {
                    for &block in local_blocks.iter().rev() {
                        if let Some(next) =
                            attempt_stitch(task, &result, &[block], ctx, &edge_index)?
                        {
                            stitched_out += 1;
                            result = next;
                        }
                    }
                }
            }
            result.blocks_deleted = stitched_out;
            task.data.set("partition.blocks_stitched_out", stitched_out);
        }

        task.data.set("partition.infidelity", result.infidelity);
        task.result = Some(result);
        Ok(())
    }
}

/// Deterministically partitions the coupling graph's qudits into connected groups of
/// at most `group_size`: repeatedly seed a group with the lowest unassigned qudit and
/// grow it BFS-style along coupling edges (lowest neighbour first).
fn partition_groups(coupling: &CouplingGraph, group_size: usize) -> Vec<Vec<usize>> {
    let n = coupling.num_qudits();
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for seed in 0..n {
        if assigned[seed] {
            continue;
        }
        let mut group = vec![seed];
        assigned[seed] = true;
        while group.len() < group_size {
            // The lowest-index unassigned qudit coupled to the group, if any.
            let next = (0..n)
                .filter(|&q| !assigned[q])
                .find(|&q| group.iter().any(|&m| coupling.contains(m, q)));
            match next {
                Some(q) => {
                    assigned[q] = true;
                    group.push(q);
                }
                None => break,
            }
        }
        group.sort_unstable();
        groups.push(group);
    }
    groups
}

/// Attempts to stitch the given blocks out of the sketch: rebuilds the smaller
/// template, projects the surviving parameters through the deletions' exact mapping,
/// and warm-start re-instantiates. Returns the new state only when the infidelity
/// stays under the success threshold; `Ok(None)` means the stitch did not hold.
///
/// # Errors
///
/// Returns [`CompileError::DegenerateCoupling`] when a surviving block edge is
/// missing from the coupling graph (a broken invariant, reported typed).
fn attempt_stitch(
    task: &CompilationTask,
    result: &SynthesisResult,
    delete: &[usize],
    ctx: &PassContext<'_>,
    edge_index: &EdgeIndex,
) -> Result<Option<SynthesisResult>, CompileError> {
    let mut trial = result.circuit.clone();
    let mut sorted = delete.to_vec();
    sorted.sort_unstable();
    let mut mapping: Option<Vec<usize>> = None;
    for &block in sorted.iter().rev() {
        let Ok(step) = builders::delete_pqc_block(&mut trial, block) else {
            return Ok(None);
        };
        mapping = Some(match mapping {
            None => step,
            Some(previous) => step.into_iter().map(|idx| previous[idx]).collect(),
        });
    }
    let Some(mapping) = mapping else {
        return Ok(None);
    };
    let edges: Vec<(usize, usize)> = result
        .blocks
        .iter()
        .enumerate()
        .filter(|(i, _)| !sorted.contains(i))
        .map(|(_, &e)| e)
        .collect();
    let surviving_indices: Vec<usize> =
        edges.iter().map(|&e| edge_index.get(e)).collect::<Result<_, _>>()?;
    let mut icfg = task.config.frontier_instantiate_config();
    icfg.seed = candidate_seed(icfg.seed ^ STITCH_SALT, &surviving_indices);
    let outcome = instantiate_circuit_mapped(
        &trial,
        &task.target,
        &result.params,
        &mapping,
        &icfg,
        ctx.cache(),
    );
    if outcome.infidelity < task.config.success_threshold {
        Ok(Some(SynthesisResult {
            blocks: edges,
            params: outcome.params,
            infidelity: outcome.infidelity,
            success: true,
            circuit: trial,
            ..result.clone()
        }))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_synth::SynthesisError;

    #[test]
    fn grouping_is_deterministic_and_respects_the_graph() {
        let line = CouplingGraph::linear(5);
        assert_eq!(partition_groups(&line, 2), vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(partition_groups(&line, 3), vec![vec![0, 1, 2], vec![3, 4]]);
        let ring = CouplingGraph::ring(4);
        assert_eq!(partition_groups(&ring, 2), vec![vec![0, 1], vec![2, 3]]);
        // A star couples everything to 0: the first group absorbs 0's neighbours,
        // the remaining leaves are uncoupled among themselves and become singletons.
        let star = CouplingGraph::new(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(partition_groups(&star, 2), vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn narrow_tasks_skip_the_pass() {
        let target = qudit_circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let mut task = CompilationTask::with_radices(target, vec![2, 2]);
        let cache = qudit_qvm::ExpressionCache::new();
        let mut ctx = PassContext::new(&cache);
        PartitionPass::default().run(&mut task, &mut ctx).unwrap();
        assert!(task.result.is_none());
        assert_eq!(task.data.get_bool("partition.skipped_narrow"), Some(true));
    }

    #[test]
    fn wide_non_unitary_targets_are_rejected_up_front() {
        let target = qudit_tensor::Matrix::<f64>::zeros(16, 16);
        let mut task = CompilationTask::with_radices(target, vec![2, 2, 2, 2]);
        let cache = qudit_qvm::ExpressionCache::new();
        let mut ctx = PassContext::new(&cache);
        let err = PartitionPass::default().run(&mut task, &mut ctx).unwrap_err();
        assert!(matches!(err, CompileError::Synthesis(SynthesisError::InvalidTarget(_))));
    }

    // Regression: a disconnected coupling graph used to survive until the round
    // loop's edge-index closure, which panicked (`.expect("round edges come from
    // the coupling graph")`). It must fail the request with a typed error instead.
    #[test]
    fn disconnected_coupling_fails_typed_not_panicking() {
        let target = qudit_tensor::Matrix::<f64>::identity(16);
        let mut task = CompilationTask::with_radices(target, vec![2, 2, 2, 2]);
        task.config.coupling = CouplingGraph::new(4, [(0, 1), (2, 3)]).unwrap();
        let cache = qudit_qvm::ExpressionCache::new();
        let mut ctx = PassContext::new(&cache);
        let err = PartitionPass::default().run(&mut task, &mut ctx).unwrap_err();
        assert!(
            matches!(err, CompileError::Synthesis(SynthesisError::InvalidCoupling(_))),
            "{err:?}"
        );
    }

    // Regression: a single-node (edgeless) coupling graph used to run zero rounds
    // and panic on `.expect("at least one round ran")`. It must report the
    // degenerate input as a typed error.
    #[test]
    fn edgeless_coupling_fails_typed_not_panicking() {
        let target = qudit_tensor::Matrix::<f64>::identity(2);
        let mut task = CompilationTask::with_radices(target, vec![2]);
        let config = PartitionConfig { max_width: 0, ..PartitionConfig::default() };
        let cache = qudit_qvm::ExpressionCache::new();
        let mut ctx = PassContext::new(&cache);
        let err = PartitionPass::new(config).run(&mut task, &mut ctx).unwrap_err();
        match err {
            CompileError::DegenerateCoupling { detail } => {
                assert!(detail.contains("no edges"), "{detail}");
            }
            other => panic!("expected DegenerateCoupling, got {other:?}"),
        }
    }
}
