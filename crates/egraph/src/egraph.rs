//! The e-graph data structure: union-find over e-classes, hash-consing of e-nodes,
//! congruence-closure rebuilding, and e-matching of rewrite patterns.
//!
//! The implementation follows the standard design popularized by the EGG library
//! (which the paper uses); it is re-implemented here from scratch so the workspace has no
//! external solver dependencies.

use std::collections::HashMap;

use qudit_qgl::Expr;

use crate::language::{Id, Node, Op, Pattern};

/// An equivalence class of e-nodes.
#[derive(Debug, Clone, Default)]
pub struct EClass {
    /// The e-nodes in this class (with canonical children at the last rebuild).
    pub nodes: Vec<Node>,
    /// Parent e-nodes that reference this class, together with the class they live in.
    pub parents: Vec<(Node, Id)>,
}

/// An e-graph over the real-valued expression language.
#[derive(Debug, Clone, Default)]
pub struct EGraph {
    unionfind: Vec<Id>,
    memo: HashMap<Node, Id>,
    classes: HashMap<Id, EClass>,
    dirty: Vec<Id>,
    node_count: usize,
}

/// A substitution binding pattern variables to e-class ids.
pub type Subst = HashMap<String, Id>;

impl EGraph {
    /// Creates an empty e-graph.
    pub fn new() -> Self {
        EGraph::default()
    }

    /// Total number of e-nodes added (an upper bound used for the saturation safeguard).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (canonical) e-classes currently alive.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Finds the canonical representative of an e-class.
    pub fn find(&self, id: Id) -> Id {
        let mut cur = id;
        loop {
            let parent = self.unionfind[cur.index()];
            if parent == cur {
                return cur;
            }
            cur = parent;
        }
    }

    fn find_mut(&mut self, id: Id) -> Id {
        // Path compression.
        let root = self.find(id);
        let mut cur = id;
        while cur != root {
            let next = self.unionfind[cur.index()];
            self.unionfind[cur.index()] = root;
            cur = next;
        }
        root
    }

    /// Canonicalizes a node's children.
    pub fn canonicalize(&self, node: &Node) -> Node {
        node.map_children(|c| self.find(c))
    }

    /// Adds a node (with already-added children) and returns its e-class.
    pub fn add(&mut self, node: Node) -> Id {
        let node = self.canonicalize(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let id = Id(self.unionfind.len() as u32);
        self.unionfind.push(id);
        let mut class = EClass::default();
        class.nodes.push(node.clone());
        self.classes.insert(id, class);
        for &child in &node.children {
            let child = self.find(child);
            if let Some(c) = self.classes.get_mut(&child) {
                c.parents.push((node.clone(), id));
            }
        }
        self.memo.insert(node, id);
        self.node_count += 1;
        id
    }

    /// Adds a full expression tree, returning the e-class of its root.
    pub fn add_expr(&mut self, expr: &Expr) -> Id {
        match expr {
            Expr::Const(c) => self.add(Node::leaf(Op::constant(*c))),
            Expr::Pi => self.add(Node::leaf(Op::Pi)),
            Expr::Var(v) => self.add(Node::leaf(Op::Var(v.clone()))),
            Expr::Neg(a) => {
                let a = self.add_expr(a);
                self.add(Node::new(Op::Neg, vec![a]))
            }
            Expr::Add(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                self.add(Node::new(Op::Add, vec![a, b]))
            }
            Expr::Sub(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                self.add(Node::new(Op::Sub, vec![a, b]))
            }
            Expr::Mul(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                self.add(Node::new(Op::Mul, vec![a, b]))
            }
            Expr::Div(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                self.add(Node::new(Op::Div, vec![a, b]))
            }
            Expr::Pow(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                self.add(Node::new(Op::Pow, vec![a, b]))
            }
            Expr::Sin(a) => {
                let a = self.add_expr(a);
                self.add(Node::new(Op::Sin, vec![a]))
            }
            Expr::Cos(a) => {
                let a = self.add_expr(a);
                self.add(Node::new(Op::Cos, vec![a]))
            }
            Expr::Sqrt(a) => {
                let a = self.add_expr(a);
                self.add(Node::new(Op::Sqrt, vec![a]))
            }
            Expr::Exp(a) => {
                let a = self.add_expr(a);
                self.add(Node::new(Op::Exp, vec![a]))
            }
            Expr::Ln(a) => {
                let a = self.add_expr(a);
                self.add(Node::new(Op::Ln, vec![a]))
            }
        }
    }

    /// Merges two e-classes, returning the surviving canonical id.
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        let a = self.find_mut(a);
        let b = self.find_mut(b);
        if a == b {
            return a;
        }
        // Keep the class with more nodes as the root to bound merge cost.
        let (root, child) = {
            let an = self.classes.get(&a).map(|c| c.nodes.len()).unwrap_or(0);
            let bn = self.classes.get(&b).map(|c| c.nodes.len()).unwrap_or(0);
            if an >= bn {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind[child.index()] = root;
        let child_class = self.classes.remove(&child).unwrap_or_default();
        let root_class = self.classes.entry(root).or_default();
        root_class.nodes.extend(child_class.nodes);
        root_class.parents.extend(child_class.parents);
        self.dirty.push(root);
        root
    }

    /// Restores the congruence invariant after unions: if two nodes become identical
    /// after canonicalization, their classes are merged; the memo table is re-keyed.
    pub fn rebuild(&mut self) {
        while let Some(dirty) = self.dirty.pop() {
            let dirty = self.find_mut(dirty);
            let parents = match self.classes.get(&dirty) {
                Some(c) => c.parents.clone(),
                None => continue,
            };
            let mut new_parents: Vec<(Node, Id)> = Vec::with_capacity(parents.len());
            let mut seen: HashMap<Node, Id> = HashMap::with_capacity(parents.len());
            for (node, class) in parents {
                let canon = self.canonicalize(&node);
                let class = self.find_mut(class);
                self.memo.remove(&node);
                if let Some(&existing) = self.memo.get(&canon) {
                    let existing = self.find_mut(existing);
                    if existing != class {
                        self.union(existing, class);
                    }
                } else {
                    self.memo.insert(canon.clone(), class);
                }
                let class = self.find_mut(class);
                match seen.get(&canon) {
                    Some(&prev) if prev == class => {}
                    _ => {
                        seen.insert(canon.clone(), class);
                        new_parents.push((canon, class));
                    }
                }
            }
            if let Some(c) = self.classes.get_mut(&self.find(dirty)) {
                c.parents = new_parents;
            }
            // Also canonicalize the node list of the class itself.
            let dirty = self.find(dirty);
            if let Some(c) = self.classes.get(&dirty) {
                let canon_nodes: Vec<Node> = c.nodes.iter().map(|n| self.canonicalize(n)).collect();
                let mut deduped: Vec<Node> = Vec::with_capacity(canon_nodes.len());
                for n in canon_nodes {
                    if !deduped.contains(&n) {
                        deduped.push(n);
                    }
                }
                self.classes.get_mut(&dirty).unwrap().nodes = deduped;
            }
        }
    }

    /// Iterates over the canonical e-class ids, in ascending id order.
    ///
    /// The sort is load-bearing: the backing map's iteration order varies between
    /// processes, and both the saturation runner and the extractor visit classes in
    /// this order. An unsorted walk would make rule-application (and hence tie-breaks
    /// among equal-cost extractions) process-dependent, which leaks all the way into
    /// the floating-point op order of JIT-compiled expressions — breaking the
    /// byte-for-byte reproducibility the synthesis engine guarantees.
    pub fn class_ids(&self) -> Vec<Id> {
        // detlint: allow(unsorted-map-iter) — sorted on the next line
        let mut ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Returns the canonical ids of classes containing at least one node whose operator
    /// satisfies `pred`, in ascending id order (see [`EGraph::class_ids`] for why the
    /// order matters). Used by the saturation runner to only attempt rules whose root
    /// operator actually occurs in a class.
    pub fn class_ids_with_op(&self, pred: impl Fn(&Op) -> bool) -> Vec<Id> {
        let mut ids: Vec<Id> = self
            // detlint: allow(unsorted-map-iter) — sorted immediately below
            .classes
            .iter()
            .filter(|(_, class)| class.nodes.iter().any(|n| pred(&n.op)))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Returns the e-class for a canonical id.
    pub fn class(&self, id: Id) -> Option<&EClass> {
        self.classes.get(&self.find(id))
    }

    /// E-matching: finds all substitutions under which `pattern` matches e-class `id`.
    pub fn match_pattern(&self, pattern: &Pattern, id: Id) -> Vec<Subst> {
        let id = self.find(id);
        match pattern {
            Pattern::Var(name) => {
                let mut s = Subst::new();
                s.insert(name.clone(), id);
                vec![s]
            }
            Pattern::Node(op, child_patterns) => {
                let mut results = Vec::new();
                let Some(class) = self.classes.get(&id) else {
                    return results;
                };
                for node in &class.nodes {
                    if &node.op != op || node.children.len() != child_patterns.len() {
                        continue;
                    }
                    // Match children left to right, threading compatible substitutions.
                    let mut partial: Vec<Subst> = vec![Subst::new()];
                    for (cp, &cid) in child_patterns.iter().zip(node.children.iter()) {
                        let mut next: Vec<Subst> = Vec::new();
                        for sub in &partial {
                            for m in self.match_pattern(cp, cid) {
                                if let Some(merged) = merge_substs(sub, &m, self) {
                                    next.push(merged);
                                }
                            }
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    results.extend(partial);
                }
                results
            }
        }
    }

    /// Instantiates a pattern under a substitution, adding any new nodes, and returns the
    /// e-class of the instantiated root.
    ///
    /// # Panics
    ///
    /// Panics if the substitution does not bind a variable used by the pattern (rule
    /// construction guarantees this).
    pub fn instantiate(&mut self, pattern: &Pattern, subst: &Subst) -> Id {
        match pattern {
            Pattern::Var(name) => {
                *subst.get(name).unwrap_or_else(|| panic!("unbound pattern variable ?{name}"))
            }
            Pattern::Node(op, children) => {
                let child_ids: Vec<Id> =
                    children.iter().map(|c| self.instantiate(c, subst)).collect();
                self.add(Node { op: op.clone(), children: child_ids })
            }
        }
    }

    /// Returns `true` if the two ids are in the same e-class.
    pub fn same_class(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }
}

fn merge_substs(a: &Subst, b: &Subst, graph: &EGraph) -> Option<Subst> {
    let mut out = a.clone();
    for (k, &v) in b {
        match out.get(k) {
            Some(&existing) if graph.find(existing) != graph.find(v) => return None,
            _ => {
                out.insert(k.clone(), v);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_mul_expr(g: &mut EGraph) -> (Id, Id, Id) {
        // (a * b), a, b
        let a = g.add(Node::leaf(Op::Var("a".into())));
        let b = g.add(Node::leaf(Op::Var("b".into())));
        let ab = g.add(Node::new(Op::Mul, vec![a, b]));
        (ab, a, b)
    }

    #[test]
    fn hashconsing_dedupes() {
        let mut g = EGraph::new();
        let (ab1, a, b) = add_mul_expr(&mut g);
        let ab2 = g.add(Node::new(Op::Mul, vec![a, b]));
        assert_eq!(ab1, ab2);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn union_and_find() {
        let mut g = EGraph::new();
        let a = g.add(Node::leaf(Op::Var("a".into())));
        let b = g.add(Node::leaf(Op::Var("b".into())));
        assert!(!g.same_class(a, b));
        g.union(a, b);
        g.rebuild();
        assert!(g.same_class(a, b));
    }

    #[test]
    fn congruence_closure() {
        // If a = b then f(a) = f(b) after rebuild.
        let mut g = EGraph::new();
        let a = g.add(Node::leaf(Op::Var("a".into())));
        let b = g.add(Node::leaf(Op::Var("b".into())));
        let fa = g.add(Node::new(Op::Sin, vec![a]));
        let fb = g.add(Node::new(Op::Sin, vec![b]));
        assert!(!g.same_class(fa, fb));
        g.union(a, b);
        g.rebuild();
        assert!(g.same_class(fa, fb));
    }

    #[test]
    fn nested_congruence() {
        // a = b implies g(f(a)) = g(f(b)).
        let mut g = EGraph::new();
        let a = g.add(Node::leaf(Op::Var("a".into())));
        let b = g.add(Node::leaf(Op::Var("b".into())));
        let fa = g.add(Node::new(Op::Cos, vec![a]));
        let fb = g.add(Node::new(Op::Cos, vec![b]));
        let gfa = g.add(Node::new(Op::Sqrt, vec![fa]));
        let gfb = g.add(Node::new(Op::Sqrt, vec![fb]));
        g.union(a, b);
        g.rebuild();
        assert!(g.same_class(gfa, gfb));
    }

    #[test]
    fn add_expr_and_structure() {
        let mut g = EGraph::new();
        let e = Expr::mul(Expr::sin(Expr::var("t")), Expr::sin(Expr::var("t")));
        let root = g.add_expr(&e);
        // sin(t) appears once thanks to hash-consing: nodes are t, sin(t), mul.
        assert_eq!(g.node_count(), 3);
        assert!(g.class(root).is_some());
    }

    #[test]
    fn pattern_matching_binds_variables() {
        let mut g = EGraph::new();
        let (ab, a, b) = add_mul_expr(&mut g);
        let pat = Pattern::parse("(* ?x ?y)");
        let matches = g.match_pattern(&pat, ab);
        assert_eq!(matches.len(), 1);
        assert_eq!(g.find(matches[0]["x"]), g.find(a));
        assert_eq!(g.find(matches[0]["y"]), g.find(b));
        // Non-matching pattern.
        assert!(g.match_pattern(&Pattern::parse("(+ ?x ?y)"), ab).is_empty());
    }

    #[test]
    fn nonlinear_pattern_requires_same_class() {
        let mut g = EGraph::new();
        let a = g.add(Node::leaf(Op::Var("a".into())));
        let b = g.add(Node::leaf(Op::Var("b".into())));
        let aa = g.add(Node::new(Op::Mul, vec![a, a]));
        let ab = g.add(Node::new(Op::Mul, vec![a, b]));
        let square = Pattern::parse("(* ?x ?x)");
        assert_eq!(g.match_pattern(&square, aa).len(), 1);
        assert!(g.match_pattern(&square, ab).is_empty());
        // After a = b, (* a b) matches (* ?x ?x).
        g.union(a, b);
        g.rebuild();
        assert_eq!(g.match_pattern(&square, ab).len(), 1);
    }

    #[test]
    fn instantiate_creates_nodes() {
        let mut g = EGraph::new();
        let (_, a, b) = add_mul_expr(&mut g);
        let mut subst = Subst::new();
        subst.insert("x".into(), a);
        subst.insert("y".into(), b);
        let id = g.instantiate(&Pattern::parse("(+ (* ?x ?y) 0)"), &subst);
        assert!(g.class(id).is_some());
        assert!(g.node_count() >= 5);
    }

    #[test]
    fn constant_pattern_matches_only_that_constant() {
        let mut g = EGraph::new();
        let two = g.add(Node::leaf(Op::constant(2.0)));
        let three = g.add(Node::leaf(Op::constant(3.0)));
        let x = g.add(Node::leaf(Op::Var("x".into())));
        let two_x = g.add(Node::new(Op::Mul, vec![two, x]));
        let three_x = g.add(Node::new(Op::Mul, vec![three, x]));
        let pat = Pattern::parse("(* 2 ?x)");
        assert_eq!(g.match_pattern(&pat, two_x).len(), 1);
        assert!(g.match_pattern(&pat, three_x).is_empty());
    }
}
