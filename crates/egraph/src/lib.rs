//! # qudit-egraph
//!
//! E-graph based symbolic simplification for the OpenQudit reproduction.
//!
//! The paper uses equality saturation (via the EGG library) to simplify QGL expressions
//! and their automatically-derived gradients before JIT compilation. This crate
//! re-implements that machinery from scratch:
//!
//! * [`language`] — the e-node language and rewrite-pattern syntax,
//! * [`egraph`] — union-find e-classes, hash-consing, congruence closure, e-matching,
//! * [`rewrite`] — rewrite rules and the saturation runner with iteration/node limits,
//! * [`rules`] — the identity corpus (arithmetic, trigonometric, exponential),
//! * [`cost`] — the extraction cost model of Table I,
//! * [`extract`] — the greedy bottom-up, CSE-aware extraction heuristic,
//! * [`simplify`](mod@simplify) — the batch simplification entry point used by the expression JIT,
//! * [`fold`] — constant folding of *instantiated* parameter values (snapping to
//!   0/±π/2/±π/±2π and folding the substituted gate expressions), used by the
//!   post-synthesis refinement pass.
//!
//! # Example
//!
//! ```
//! use qudit_egraph::simplify::simplify;
//! use qudit_qgl::Expr;
//!
//! // sin²t + cos²t simplifies to 1.
//! let t = Expr::var("t");
//! let e = Expr::Add(
//!     std::sync::Arc::new(Expr::mul(Expr::sin(t.clone()), Expr::sin(t.clone()))),
//!     std::sync::Arc::new(Expr::mul(Expr::cos(t.clone()), Expr::cos(t))),
//! );
//! assert_eq!(simplify(&e), Expr::one());
//! ```

pub mod cost;
pub mod egraph;
pub mod extract;
pub mod fold;
pub mod language;
pub mod rewrite;
pub mod rules;
pub mod simplify;

pub use cost::OpCost;
pub use egraph::EGraph;
pub use extract::GreedyExtractor;
pub use fold::{fold_elements, fold_params, snap_to_symbolic, ParamFold, SymbolicSnap};
pub use language::{Id, Node, Op, Pattern};
pub use rewrite::{Rewrite, RunReport, Runner, StopReason};
pub use simplify::{simplify, simplify_batch, simplify_batch_with, SimplifyConfig, SimplifyResult};
