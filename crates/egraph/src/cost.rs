//! The expression-extraction cost model (Table I of the paper).
//!
//! The cost function is designed to encourage trigonometric identities: the primary
//! objective is to reduce the count of expensive `sin`/`cos` operations (without
//! introducing other costly functions like `ln` or `exp`) and to promote common
//! subexpression elimination.

use crate::language::Op;

/// Cost of π and variables.
pub const COST_FREE: f64 = 0.0;
/// Cost of a literal constant.
pub const COST_CONST: f64 = 0.5;
/// Cost of negation, addition, and subtraction.
pub const COST_ADDITIVE: f64 = 1.0;
/// Cost of multiplication and division.
pub const COST_MULTIPLICATIVE: f64 = 5.0;
/// Cost of `sqrt`, `sin`, and `cos`.
pub const COST_TRIG: f64 = 50.0;
/// Cost of `exp`, `ln`, and `pow`.
pub const COST_TRANSCENDENTAL: f64 = 100.0;

/// The per-operator cost table of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost;

impl OpCost {
    /// Creates the default (paper) cost model.
    pub fn new() -> Self {
        OpCost
    }

    /// The cost of applying `op`, excluding the cost of its children.
    pub fn cost(&self, op: &Op) -> f64 {
        match op {
            Op::Pi | Op::Var(_) => COST_FREE,
            Op::Const(_) => COST_CONST,
            Op::Neg | Op::Add | Op::Sub => COST_ADDITIVE,
            Op::Mul | Op::Div => COST_MULTIPLICATIVE,
            Op::Sqrt | Op::Sin | Op::Cos => COST_TRIG,
            Op::Exp | Op::Ln | Op::Pow => COST_TRANSCENDENTAL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values() {
        let c = OpCost::new();
        assert_eq!(c.cost(&Op::Pi), 0.0);
        assert_eq!(c.cost(&Op::Var("x".into())), 0.0);
        assert_eq!(c.cost(&Op::constant(3.0)), 0.5);
        assert_eq!(c.cost(&Op::Neg), 1.0);
        assert_eq!(c.cost(&Op::Add), 1.0);
        assert_eq!(c.cost(&Op::Sub), 1.0);
        assert_eq!(c.cost(&Op::Mul), 5.0);
        assert_eq!(c.cost(&Op::Div), 5.0);
        assert_eq!(c.cost(&Op::Sqrt), 50.0);
        assert_eq!(c.cost(&Op::Sin), 50.0);
        assert_eq!(c.cost(&Op::Cos), 50.0);
        assert_eq!(c.cost(&Op::Exp), 100.0);
        assert_eq!(c.cost(&Op::Ln), 100.0);
        assert_eq!(c.cost(&Op::Pow), 100.0);
    }

    #[test]
    fn trig_dominates_arithmetic() {
        // The property the paper relies on: the separation between cheap arithmetic and
        // expensive trigonometric operations is the dominant factor.
        let c = OpCost::new();
        assert!(c.cost(&Op::Sin) > 5.0 * c.cost(&Op::Mul));
        assert!(c.cost(&Op::Exp) > c.cost(&Op::Sin));
    }
}
