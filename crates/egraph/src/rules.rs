//! The rewrite-rule corpus.
//!
//! The paper bootstraps its rule set from Herbie's real-valued rules and expands it with
//! Enumo until it can discover the closed-form trigonometric identities on Wikipedia.
//! This module hand-curates the same identity families: arithmetic identities,
//! commutativity/associativity/distributivity, negation pushing, Pythagorean and
//! angle-sum/difference/double-angle identities, exponential and logarithm laws, and
//! power/square-root interactions. These are sufficient to simplify the gate and
//! gradient expressions of the benchmark gate set (U3, U2, RX/RY/RZ, RZZ, CSUM, qutrit
//! phase) and to reproduce the paper's U2 CSE example.

use crate::rewrite::Rewrite;

/// Returns the default rule set.
pub fn default_rules() -> Vec<Rewrite> {
    let mut rules: Vec<Rewrite> = Vec::new();
    let mut uni = |name: &str, lhs: &str, rhs: &str| rules.push(Rewrite::new(name, lhs, rhs));

    // --- Arithmetic identities -------------------------------------------------------
    uni("add-comm", "(+ ?a ?b)", "(+ ?b ?a)");
    uni("mul-comm", "(* ?a ?b)", "(* ?b ?a)");
    uni("add-assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))");
    uni("add-assoc-rev", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)");
    uni("mul-assoc", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))");
    uni("mul-assoc-rev", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)");
    uni("add-zero", "(+ ?a 0)", "?a");
    uni("mul-one", "(* ?a 1)", "?a");
    uni("mul-zero", "(* ?a 0)", "0");
    uni("sub-zero", "(- ?a 0)", "?a");
    uni("sub-self", "(- ?a ?a)", "0");
    uni("div-one", "(/ ?a 1)", "?a");
    uni("div-self", "(/ ?a ?a)", "1");
    uni("neg-as-sub", "(- 0 ?a)", "(- ?a)");
    uni("sub-as-add-neg", "(- ?a ?b)", "(+ ?a (- ?b))");
    uni("add-neg-as-sub", "(+ ?a (- ?b))", "(- ?a ?b)");
    uni("neg-neg", "(- (- ?a))", "?a");
    uni("mul-neg-one", "(* -1 ?a)", "(- ?a)");
    uni("neg-mul", "(* (- ?a) ?b)", "(- (* ?a ?b))");
    uni("neg-mul-rev", "(- (* ?a ?b))", "(* (- ?a) ?b)");
    uni("neg-distribute-add", "(- (+ ?a ?b))", "(+ (- ?a) (- ?b))");
    uni("div-as-mul", "(/ (* ?a ?b) ?c)", "(* ?a (/ ?b ?c))");
    uni("div-div", "(/ (/ ?a ?b) ?c)", "(/ ?a (* ?b ?c))");
    uni("neg-div", "(/ (- ?a) ?b)", "(- (/ ?a ?b))");

    // --- Distributivity ---------------------------------------------------------------
    uni("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))");
    uni("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))");
    uni("distribute-sub", "(* ?a (- ?b ?c))", "(- (* ?a ?b) (* ?a ?c))");
    uni("factor-sub", "(- (* ?a ?b) (* ?a ?c))", "(* ?a (- ?b ?c))");

    // --- Trigonometric identities ----------------------------------------------------
    // Parity.
    uni("sin-neg", "(sin (- ?a))", "(- (sin ?a))");
    uni("sin-neg-rev", "(- (sin ?a))", "(sin (- ?a))");
    uni("cos-neg", "(cos (- ?a))", "(cos ?a)");
    uni("sin-zero", "(sin 0)", "0");
    uni("cos-zero", "(cos 0)", "1");
    // Pythagorean identity (both groupings).
    uni("pythagoras", "(+ (* (sin ?a) (sin ?a)) (* (cos ?a) (cos ?a)))", "1");
    uni("pythagoras-rev", "(+ (* (cos ?a) (cos ?a)) (* (sin ?a) (sin ?a)))", "1");
    uni("one-minus-sin2", "(- 1 (* (sin ?a) (sin ?a)))", "(* (cos ?a) (cos ?a))");
    uni("one-minus-cos2", "(- 1 (* (cos ?a) (cos ?a)))", "(* (sin ?a) (sin ?a))");
    // Angle sum and difference.
    uni("sin-sum", "(sin (+ ?a ?b))", "(+ (* (sin ?a) (cos ?b)) (* (cos ?a) (sin ?b)))");
    uni("sin-sum-rev", "(+ (* (sin ?a) (cos ?b)) (* (cos ?a) (sin ?b)))", "(sin (+ ?a ?b))");
    uni("cos-sum", "(cos (+ ?a ?b))", "(- (* (cos ?a) (cos ?b)) (* (sin ?a) (sin ?b)))");
    uni("cos-sum-rev", "(- (* (cos ?a) (cos ?b)) (* (sin ?a) (sin ?b)))", "(cos (+ ?a ?b))");
    uni("sin-diff", "(sin (- ?a ?b))", "(- (* (sin ?a) (cos ?b)) (* (cos ?a) (sin ?b)))");
    uni("cos-diff", "(cos (- ?a ?b))", "(+ (* (cos ?a) (cos ?b)) (* (sin ?a) (sin ?b)))");
    // Double angle.
    uni("sin-double", "(sin (* 2 ?a))", "(* 2 (* (sin ?a) (cos ?a)))");
    uni("cos-double", "(cos (* 2 ?a))", "(- (* (cos ?a) (cos ?a)) (* (sin ?a) (sin ?a)))");

    // --- Exponential and logarithm laws ----------------------------------------------
    uni("exp-zero", "(exp 0)", "1");
    uni("exp-sum", "(exp (+ ?a ?b))", "(* (exp ?a) (exp ?b))");
    uni("exp-sum-rev", "(* (exp ?a) (exp ?b))", "(exp (+ ?a ?b))");
    uni("exp-neg", "(exp (- ?a))", "(/ 1 (exp ?a))");
    uni("ln-one", "(ln 1)", "0");
    uni("ln-exp", "(ln (exp ?a))", "?a");
    uni("exp-ln", "(exp (ln ?a))", "?a");
    uni("ln-mul", "(ln (* ?a ?b))", "(+ (ln ?a) (ln ?b))");

    // --- Powers and square roots ------------------------------------------------------
    uni("pow-zero", "(pow ?a 0)", "1");
    uni("pow-one", "(pow ?a 1)", "?a");
    uni("pow-two", "(pow ?a 2)", "(* ?a ?a)");
    uni("pow-two-rev", "(* ?a ?a)", "(pow ?a 2)");
    uni("sqrt-square", "(* (sqrt ?a) (sqrt ?a))", "?a");
    uni("pow-mul", "(* (pow ?a ?b) (pow ?a ?c))", "(pow ?a (+ ?b ?c))");

    rules
}

/// A reduced rule set containing only the cheap structural identities. Used by the
/// ablation benchmark to quantify how much the trig/exponential identities contribute.
pub fn structural_rules_only() -> Vec<Rewrite> {
    default_rules()
        .into_iter()
        .filter(|r| {
            !r.name.contains("sin")
                && !r.name.contains("cos")
                && !r.name.contains("pythagoras")
                && !r.name.contains("exp")
                && !r.name.contains("ln")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egraph::EGraph;
    use crate::rewrite::Runner;
    use qudit_qgl::Expr;

    fn prove_equal(a: &Expr, b: &Expr) -> bool {
        let mut g = EGraph::new();
        let ia = g.add_expr(a);
        let ib = g.add_expr(b);
        Runner::new(12, 50_000).run(&mut g, &default_rules());
        g.same_class(ia, ib)
    }

    #[test]
    fn rule_set_is_nontrivial() {
        assert!(default_rules().len() > 40);
        assert!(structural_rules_only().len() < default_rules().len());
    }

    #[test]
    fn proves_pythagorean_identity() {
        let t = Expr::var("t");
        let lhs = Expr::Add(
            std::sync::Arc::new(Expr::mul(Expr::sin(t.clone()), Expr::sin(t.clone()))),
            std::sync::Arc::new(Expr::mul(Expr::cos(t.clone()), Expr::cos(t.clone()))),
        );
        assert!(prove_equal(&lhs, &Expr::one()));
    }

    #[test]
    fn proves_cos_angle_sum() {
        let (a, b) = (Expr::var("a"), Expr::var("b"));
        let lhs = Expr::cos(Expr::add(a.clone(), b.clone()));
        let rhs = Expr::sub(
            Expr::mul(Expr::cos(a.clone()), Expr::cos(b.clone())),
            Expr::mul(Expr::sin(a.clone()), Expr::sin(b.clone())),
        );
        assert!(prove_equal(&lhs, &rhs));
    }

    #[test]
    fn proves_sin_parity() {
        let t = Expr::var("t");
        let lhs = Expr::sin(Expr::Neg(std::sync::Arc::new(t.clone())));
        let rhs = Expr::Neg(std::sync::Arc::new(Expr::sin(t.clone())));
        assert!(prove_equal(&lhs, &rhs));
    }

    #[test]
    fn proves_exp_product_law() {
        let (a, b) = (Expr::var("a"), Expr::var("b"));
        let lhs = Expr::exp(Expr::add(a.clone(), b.clone()));
        let rhs = Expr::mul(Expr::exp(a), Expr::exp(b));
        assert!(prove_equal(&lhs, &rhs));
    }

    #[test]
    fn proves_double_angle() {
        let t = Expr::var("t");
        let lhs = Expr::sin(Expr::mul(Expr::constant(2.0), t.clone()));
        let rhs =
            Expr::mul(Expr::constant(2.0), Expr::mul(Expr::sin(t.clone()), Expr::cos(t.clone())));
        assert!(prove_equal(&lhs, &rhs));
    }

    #[test]
    fn does_not_prove_false_identities() {
        let t = Expr::var("t");
        assert!(!prove_equal(&Expr::sin(t.clone()), &Expr::cos(t.clone())));
        assert!(!prove_equal(&Expr::var("a"), &Expr::var("b")));
    }
}
