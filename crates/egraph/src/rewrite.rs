//! Rewrite rules and the equality-saturation runner.
//!
//! A [`Rewrite`] is a pair of patterns `lhs → rhs`; saturation repeatedly e-matches every
//! rule against every e-class and unions the matched class with the instantiated
//! right-hand side. The paper notes that QGL expressions are small and sparse, so
//! saturation is expected to converge quickly, but standard safeguards (iteration and
//! node-count limits) are applied to prevent blow-up (Sec. III-C).

use crate::egraph::EGraph;
use crate::language::Pattern;

/// A directed rewrite rule `lhs → rhs`.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Human-readable rule name (used in reports and tests).
    pub name: String,
    /// Pattern to match.
    pub lhs: Pattern,
    /// Pattern to instantiate and union with the match.
    pub rhs: Pattern,
}

impl Rewrite {
    /// Creates a rewrite from textual patterns.
    ///
    /// # Panics
    ///
    /// Panics if the right-hand side uses a pattern variable that the left-hand side
    /// does not bind (the rule would be unsound to instantiate).
    pub fn new(name: &str, lhs: &str, rhs: &str) -> Self {
        let lhs = Pattern::parse(lhs);
        let rhs = Pattern::parse(rhs);
        let bound = lhs.variables();
        for v in rhs.variables() {
            assert!(
                bound.contains(&v),
                "rewrite '{name}': rhs variable ?{v} is not bound by the lhs"
            );
        }
        Rewrite { name: name.to_string(), lhs, rhs }
    }

    /// Creates the pair of rewrites `lhs → rhs` and `rhs → lhs`.
    ///
    /// # Panics
    ///
    /// Panics if either direction would reference an unbound variable.
    pub fn bidirectional(name: &str, lhs: &str, rhs: &str) -> Vec<Self> {
        vec![Rewrite::new(name, lhs, rhs), Rewrite::new(&format!("{name}-rev"), rhs, lhs)]
    }
}

/// Why the saturation loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No rule produced a new union in the last iteration — the e-graph is saturated.
    Saturated,
    /// The iteration limit was reached.
    IterationLimit,
    /// The node limit was reached.
    NodeLimit,
}

/// A report of a saturation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of iterations executed.
    pub iterations: usize,
    /// Total number of unions applied.
    pub unions: usize,
    /// Final e-node count.
    pub nodes: usize,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// The equality-saturation runner with the paper's safeguards.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Maximum number of saturation iterations.
    pub iter_limit: usize,
    /// Maximum number of e-nodes before the run is cut short.
    pub node_limit: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { iter_limit: 8, node_limit: 10_000 }
    }
}

impl Runner {
    /// Creates a runner with explicit limits.
    pub fn new(iter_limit: usize, node_limit: usize) -> Self {
        Runner { iter_limit, node_limit }
    }

    /// Runs equality saturation with the given rules.
    pub fn run(&self, graph: &mut EGraph, rules: &[Rewrite]) -> RunReport {
        let mut total_unions = 0usize;
        for iteration in 0..self.iter_limit {
            if graph.node_count() > self.node_limit {
                return RunReport {
                    iterations: iteration,
                    unions: total_unions,
                    nodes: graph.node_count(),
                    stop_reason: StopReason::NodeLimit,
                };
            }
            // Phase 1: collect matches against the frozen e-graph. Rules are only
            // attempted against classes that contain the rule's root operator, which
            // keeps e-matching cheap on the small-but-wide e-graphs gate batches create.
            let mut pending: Vec<(usize, crate::egraph::Subst, crate::language::Id)> = Vec::new();
            for (rule_idx, rule) in rules.iter().enumerate() {
                let candidates = match &rule.lhs {
                    Pattern::Var(_) => graph.class_ids(),
                    Pattern::Node(op, _) => graph.class_ids_with_op(|o| o == op),
                };
                for class in candidates {
                    for subst in graph.match_pattern(&rule.lhs, class) {
                        pending.push((rule_idx, subst, class));
                    }
                }
            }
            // Phase 2: apply.
            let mut unions_this_iter = 0usize;
            for (rule_idx, subst, class) in pending {
                if graph.node_count() > self.node_limit {
                    break;
                }
                let new_id = graph.instantiate(&rules[rule_idx].rhs, &subst);
                if !graph.same_class(new_id, class) {
                    graph.union(new_id, class);
                    unions_this_iter += 1;
                }
            }
            graph.rebuild();
            total_unions += unions_this_iter;
            if unions_this_iter == 0 {
                return RunReport {
                    iterations: iteration + 1,
                    unions: total_unions,
                    nodes: graph.node_count(),
                    stop_reason: StopReason::Saturated,
                };
            }
        }
        RunReport {
            iterations: self.iter_limit,
            unions: total_unions,
            nodes: graph.node_count(),
            stop_reason: StopReason::IterationLimit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_qgl::Expr;

    #[test]
    fn commutativity_discovers_equivalence() {
        let mut g = EGraph::new();
        let ab = g.add_expr(&Expr::Mul(
            std::sync::Arc::new(Expr::var("a")),
            std::sync::Arc::new(Expr::var("b")),
        ));
        let ba = g.add_expr(&Expr::Mul(
            std::sync::Arc::new(Expr::var("b")),
            std::sync::Arc::new(Expr::var("a")),
        ));
        assert!(!g.same_class(ab, ba));
        let rules = vec![Rewrite::new("mul-comm", "(* ?a ?b)", "(* ?b ?a)")];
        let report = Runner::default().run(&mut g, &rules);
        assert!(g.same_class(ab, ba));
        assert_eq!(report.stop_reason, StopReason::Saturated);
    }

    #[test]
    fn add_zero_identity() {
        let mut g = EGraph::new();
        // Build (+ x 0) without the constructor folding by assembling nodes manually.
        use crate::language::{Node, Op};
        let x = g.add(Node::leaf(Op::Var("x".into())));
        let zero = g.add(Node::leaf(Op::constant(0.0)));
        let sum = g.add(Node::new(Op::Add, vec![x, zero]));
        let rules = vec![Rewrite::new("add-zero", "(+ ?a 0)", "?a")];
        Runner::default().run(&mut g, &rules);
        assert!(g.same_class(sum, x));
    }

    #[test]
    fn node_limit_stops_explosive_rules() {
        let mut g = EGraph::new();
        // A long addition chain together with associativity/commutativity explores an
        // exponential number of re-associations; a small node limit must cut it short.
        let mut chain = Expr::var("v0");
        for k in 1..10 {
            chain = Expr::add(chain, Expr::var(format!("v{k}")));
        }
        g.add_expr(&chain);
        let rules = vec![
            Rewrite::new("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
            Rewrite::new("add-assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
            Rewrite::new("add-assoc-rev", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        ];
        let report = Runner::new(50, 150).run(&mut g, &rules);
        assert_eq!(report.stop_reason, StopReason::NodeLimit);
        assert!(report.nodes >= 150);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut g = EGraph::new();
        g.add_expr(&Expr::add(Expr::var("a"), Expr::var("b")));
        let rules = vec![Rewrite::new("grow", "?a", "(+ ?a 0)")];
        let report = Runner::new(1, 1_000_000).run(&mut g, &rules);
        assert_eq!(report.stop_reason, StopReason::IterationLimit);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_rhs_variable_panics() {
        Rewrite::new("bad", "(sin ?x)", "(+ ?x ?y)");
    }

    #[test]
    fn bidirectional_creates_two_rules() {
        let rules = Rewrite::bidirectional("exp-law", "(exp (+ ?a ?b))", "(* (exp ?a) (exp ?b))");
        assert_eq!(rules.len(), 2);
        assert_ne!(rules[0].name, rules[1].name);
    }
}
