//! Greedy bottom-up expression extraction with CSE-aware cost zeroing.
//!
//! Optimal extraction from an e-graph can be phrased as an ILP, but the paper argues that
//! is too slow for a production compiler and instead uses a greedy heuristic
//! (Sec. III-C):
//!
//! 1. Stabilize costs across the e-graph by iteratively computing each e-class's minimum
//!    cost from the current costs of its children.
//! 2. Extract the lowest-cost expression for the requested root.
//! 3. Set the cost of every e-class traversed during that extraction to zero, so that
//!    subsequent extractions are incentivized to *reuse* already-computed subexpressions
//!    (common subexpression elimination).
//! 4. Repeat until all requested roots have been extracted.
//!
//! The canonical example is the U2 gate: once `e^{iλ}` and `e^{iϕ}` have been extracted,
//! the equivalent form `e^{iλ}·e^{iϕ}` of `e^{i(ϕ+λ)}` costs a single multiplication and
//! is chosen over a fresh complex exponential.

use std::collections::HashMap;
use std::collections::HashSet;

use qudit_qgl::Expr;

use crate::cost::OpCost;
use crate::egraph::EGraph;
use crate::language::{Id, Node, Op};

/// Greedy bottom-up extractor over an e-graph.
#[derive(Debug)]
pub struct GreedyExtractor<'a> {
    graph: &'a EGraph,
    cost_model: OpCost,
    /// Best (cost, node) per canonical e-class under the current zeroing state.
    best: HashMap<Id, (f64, Node)>,
    /// Classes already extracted; their effective cost is zero and their expression is
    /// cached for reuse.
    extracted: HashMap<Id, Expr>,
}

impl<'a> GreedyExtractor<'a> {
    /// Creates an extractor and performs the initial cost stabilization.
    pub fn new(graph: &'a EGraph, cost_model: OpCost) -> Self {
        let mut ex =
            GreedyExtractor { graph, cost_model, best: HashMap::new(), extracted: HashMap::new() };
        ex.stabilize();
        ex
    }

    /// The effective cost of using `id` as a child: zero if already extracted, otherwise
    /// its stabilized class cost.
    fn child_cost(&self, id: Id) -> Option<f64> {
        let id = self.graph.find(id);
        if self.extracted.contains_key(&id) {
            return Some(0.0);
        }
        self.best.get(&id).map(|(c, _)| *c)
    }

    /// Iteratively recomputes the minimum cost of every e-class until a fixpoint.
    fn stabilize(&mut self) {
        let classes = self.graph.class_ids();
        loop {
            let mut changed = false;
            for &id in &classes {
                let id = self.graph.find(id);
                let Some(class) = self.graph.class(id) else { continue };
                let mut best: Option<(f64, Node)> = self.best.get(&id).cloned();
                for node in &class.nodes {
                    let mut total = self.cost_model.cost(&node.op);
                    let mut feasible = true;
                    for &child in &node.children {
                        match self.child_cost(child) {
                            Some(c) => total += c,
                            None => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                    if !feasible {
                        continue;
                    }
                    match &best {
                        Some((c, _)) if *c <= total => {}
                        _ => {
                            best = Some((total, node.clone()));
                        }
                    }
                }
                if let Some((cost, node)) = best {
                    let prev = self.best.insert(id, (cost, node));
                    if prev.map(|(c, _)| c) != Some(cost) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The stabilized cost of an e-class (before any zeroing from extraction), if the
    /// class is extractable at all.
    pub fn class_cost(&self, id: Id) -> Option<f64> {
        self.best.get(&self.graph.find(id)).map(|(c, _)| *c)
    }

    /// Extracts the best expression for `root`, zeroing every traversed class so later
    /// extractions reuse the work.
    ///
    /// # Panics
    ///
    /// Panics if the class is not extractable (cannot happen for classes created by
    /// adding complete expressions).
    pub fn extract(&mut self, root: Id) -> Expr {
        let root = self.graph.find(root);
        let mut on_stack = HashSet::new();
        let expr = self.extract_rec(root, &mut on_stack);
        // Re-stabilize so that classes *above* the newly-zeroed ones can take advantage
        // of the cheaper children when the next root is extracted.
        self.stabilize();
        expr
    }

    fn extract_rec(&mut self, id: Id, on_stack: &mut HashSet<Id>) -> Expr {
        let id = self.graph.find(id);
        if let Some(done) = self.extracted.get(&id) {
            return done.clone();
        }
        on_stack.insert(id);
        let (_, node) = self
            .best
            .get(&id)
            .cloned()
            .unwrap_or_else(|| panic!("e-class {id} has no extractable expression"));
        // Guard against pathological cycles: if the chosen node recurses into a class
        // currently on the stack, fall back to the cheapest acyclic alternative.
        let node = if node.children.iter().any(|c| on_stack.contains(&self.graph.find(*c))) {
            self.acyclic_alternative(id, on_stack).unwrap_or(node)
        } else {
            node
        };
        let children: Vec<Expr> =
            node.children.iter().map(|&c| self.extract_rec(c, on_stack)).collect();
        let expr = node_to_expr(&node.op, children);
        on_stack.remove(&id);
        self.extracted.insert(id, expr.clone());
        expr
    }

    fn acyclic_alternative(&self, id: Id, on_stack: &HashSet<Id>) -> Option<Node> {
        let class = self.graph.class(id)?;
        let mut best: Option<(f64, Node)> = None;
        for node in &class.nodes {
            if node.children.iter().any(|c| on_stack.contains(&self.graph.find(*c))) {
                continue;
            }
            let mut total = self.cost_model.cost(&node.op);
            let mut feasible = true;
            for &child in &node.children {
                match self.child_cost(child) {
                    Some(c) => total += c,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            match &best {
                Some((c, _)) if *c <= total => {}
                _ => best = Some((total, node.clone())),
            }
        }
        best.map(|(_, n)| n)
    }

    /// Extracts a sequence of roots in order, sharing extraction state (and therefore
    /// CSE) across them.
    pub fn extract_many(&mut self, roots: &[Id]) -> Vec<Expr> {
        roots.iter().map(|&r| self.extract(r)).collect()
    }
}

/// Rebuilds an [`Expr`] node from an operator and already-extracted children.
fn node_to_expr(op: &Op, mut children: Vec<Expr>) -> Expr {
    match op {
        Op::Const(bits) => Expr::Const(f64::from_bits(*bits)),
        Op::Pi => Expr::Pi,
        Op::Var(name) => Expr::Var(name.clone()),
        Op::Neg => Expr::neg(children.remove(0)),
        Op::Sin => Expr::sin(children.remove(0)),
        Op::Cos => Expr::cos(children.remove(0)),
        Op::Sqrt => Expr::sqrt(children.remove(0)),
        Op::Exp => Expr::exp(children.remove(0)),
        Op::Ln => Expr::ln(children.remove(0)),
        Op::Add => {
            let b = children.pop().expect("add arity");
            let a = children.pop().expect("add arity");
            Expr::add(a, b)
        }
        Op::Sub => {
            let b = children.pop().expect("sub arity");
            let a = children.pop().expect("sub arity");
            Expr::sub(a, b)
        }
        Op::Mul => {
            let b = children.pop().expect("mul arity");
            let a = children.pop().expect("mul arity");
            Expr::mul(a, b)
        }
        Op::Div => {
            let b = children.pop().expect("div arity");
            let a = children.pop().expect("div arity");
            Expr::div(a, b)
        }
        Op::Pow => {
            let b = children.pop().expect("pow arity");
            let a = children.pop().expect("pow arity");
            Expr::pow(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::Runner;
    use crate::rules::default_rules;

    fn simplify_one(expr: &Expr) -> Expr {
        let mut g = EGraph::new();
        let root = g.add_expr(expr);
        Runner::new(12, 50_000).run(&mut g, &default_rules());
        let mut ex = GreedyExtractor::new(&g, OpCost::new());
        ex.extract(root)
    }

    #[test]
    fn extracts_simplest_form_of_pythagoras() {
        let t = Expr::var("t");
        let e = Expr::Add(
            std::sync::Arc::new(Expr::mul(Expr::sin(t.clone()), Expr::sin(t.clone()))),
            std::sync::Arc::new(Expr::mul(Expr::cos(t.clone()), Expr::cos(t.clone()))),
        );
        let simplified = simplify_one(&e);
        assert_eq!(simplified, Expr::one());
    }

    #[test]
    fn extraction_preserves_value() {
        let t = Expr::var("t");
        let e = Expr::mul(
            Expr::sin(Expr::add(t.clone(), Expr::var("u"))),
            Expr::cos(Expr::sub(t.clone(), Expr::var("u"))),
        );
        let s = simplify_one(&e);
        let names = vec!["t".to_string(), "u".to_string()];
        for point in [[0.3, 0.8], [1.1, -0.4], [2.0, 0.0]] {
            let a = e.eval_with(&names, &point);
            let b = s.eval_with(&names, &point);
            assert!((a - b).abs() < 1e-12, "{a} vs {b} at {point:?}");
        }
    }

    #[test]
    fn extraction_does_not_increase_cost() {
        let t = Expr::var("t");
        let e = Expr::add(
            Expr::mul(Expr::sin(t.clone()), Expr::cos(t.clone())),
            Expr::mul(Expr::cos(t.clone()), Expr::sin(t.clone())),
        );
        let s = simplify_one(&e);
        assert!(s.trig_count() <= e.trig_count());
        assert!(s.node_count() <= e.node_count() + 2);
    }

    #[test]
    fn cse_zeroing_reuses_extracted_subexpressions() {
        // Mimics the paper's U2 example: extract cos(ϕ), sin(ϕ), cos(λ), sin(λ) first,
        // then cos(ϕ+λ). With those classes zeroed, the angle-sum expansion
        // cosϕcosλ − sinϕsinλ is cheaper (2 mul + 1 sub = 11) than a fresh cos (50+…),
        // so the extractor must pick the expanded, reusing form.
        let (phi, lam) = (Expr::var("phi"), Expr::var("lam"));
        let cp = Expr::cos(phi.clone());
        let sp = Expr::sin(phi.clone());
        let cl = Expr::cos(lam.clone());
        let sl = Expr::sin(lam.clone());
        let cpl = Expr::cos(Expr::add(phi.clone(), lam.clone()));

        let mut g = EGraph::new();
        let roots: Vec<Id> = [&cp, &sp, &cl, &sl, &cpl].iter().map(|e| g.add_expr(e)).collect();
        Runner::new(12, 50_000).run(&mut g, &default_rules());
        let mut ex = GreedyExtractor::new(&g, OpCost::new());
        let exprs = ex.extract_many(&roots);

        // The first four extractions are the plain trig calls.
        assert_eq!(exprs[0], cp);
        assert_eq!(exprs[3], sl);
        // The fifth must not introduce a new trig node: it reuses the four extracted ones.
        assert_eq!(exprs[4].trig_count(), 4, "expected angle-sum reuse, got {}", exprs[4]);
        // And it must still be numerically correct.
        let names = vec!["phi".to_string(), "lam".to_string()];
        for point in [[0.2f64, 1.4], [1.0, -2.0]] {
            let expect = (point[0] + point[1]).cos();
            let got = exprs[4].eval_with(&names, &point);
            assert!((expect - got).abs() < 1e-12);
        }
    }

    #[test]
    fn without_prior_extraction_plain_cos_wins() {
        // Sanity check of the cost model: extracting cos(ϕ+λ) alone should keep the
        // single-cos form (cost 51) rather than expanding to four trig calls (cost 211).
        let (phi, lam) = (Expr::var("phi"), Expr::var("lam"));
        let cpl = Expr::cos(Expr::add(phi, lam));
        let s = simplify_one(&cpl);
        assert_eq!(s.trig_count(), 1);
    }

    #[test]
    fn extract_many_shares_across_roots() {
        let t = Expr::var("t");
        let a = Expr::sin(Expr::div(t.clone(), Expr::constant(2.0)));
        let b = Expr::mul(
            Expr::sin(Expr::div(t.clone(), Expr::constant(2.0))),
            Expr::cos(Expr::div(t.clone(), Expr::constant(2.0))),
        );
        let mut g = EGraph::new();
        let ra = g.add_expr(&a);
        let rb = g.add_expr(&b);
        Runner::new(10, 50_000).run(&mut g, &default_rules());
        let mut ex = GreedyExtractor::new(&g, OpCost::new());
        let out = ex.extract_many(&[ra, rb]);
        assert_eq!(out[0], a);
        // Value preserved for the second root.
        let names = vec!["t".to_string()];
        for p in [[0.4], [2.2]] {
            assert!((out[1].eval_with(&names, &p) - b.eval_with(&names, &p)).abs() < 1e-12);
        }
    }
}
