//! The term language over which the e-graph operates.
//!
//! The language mirrors the real-valued symbolic expression nodes of `qudit-qgl`
//! (constants, π, variables, arithmetic, trigonometry, `sqrt`/`exp`/`ln`/`pow`) but with
//! children expressed as e-class ids, plus a textual pattern language used to state
//! rewrite rules (`?x` denotes a pattern variable).

use std::fmt;

/// An e-class identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub u32);

impl Id {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The operator of an e-node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// A floating-point constant (stored as bits so that `Eq`/`Hash` are well-defined).
    Const(u64),
    /// The constant π.
    Pi,
    /// A named variable.
    Var(String),
    /// Unary negation.
    Neg,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Power.
    Pow,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
}

impl Op {
    /// The arity of the operator.
    pub fn arity(&self) -> usize {
        match self {
            Op::Const(_) | Op::Pi | Op::Var(_) => 0,
            Op::Neg | Op::Sin | Op::Cos | Op::Sqrt | Op::Exp | Op::Ln => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Pow => 2,
        }
    }

    /// Creates a constant operator from an `f64`.
    pub fn constant(v: f64) -> Op {
        Op::Const(v.to_bits())
    }

    /// Returns the constant value if this is a constant (or π).
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Op::Const(bits) => Some(f64::from_bits(*bits)),
            Op::Pi => Some(std::f64::consts::PI),
            _ => None,
        }
    }

    /// The operator's name as used in the textual pattern syntax.
    pub fn name(&self) -> String {
        match self {
            Op::Const(bits) => format!("{}", f64::from_bits(*bits)),
            Op::Pi => "pi".to_string(),
            Op::Var(v) => v.clone(),
            Op::Neg => "-".to_string(),
            Op::Add => "+".to_string(),
            Op::Sub => "-".to_string(),
            Op::Mul => "*".to_string(),
            Op::Div => "/".to_string(),
            Op::Pow => "pow".to_string(),
            Op::Sin => "sin".to_string(),
            Op::Cos => "cos".to_string(),
            Op::Sqrt => "sqrt".to_string(),
            Op::Exp => "exp".to_string(),
            Op::Ln => "ln".to_string(),
        }
    }
}

/// An e-node: an operator applied to e-class children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Child e-class ids (length equals `op.arity()`).
    pub children: Vec<Id>,
}

impl Node {
    /// Creates a leaf node.
    pub fn leaf(op: Op) -> Node {
        debug_assert_eq!(op.arity(), 0);
        Node { op, children: Vec::new() }
    }

    /// Creates a node with children.
    pub fn new(op: Op, children: Vec<Id>) -> Node {
        debug_assert_eq!(op.arity(), children.len(), "arity mismatch for {op:?}");
        Node { op, children }
    }

    /// Returns a copy of the node with its children canonicalized by `f`.
    pub fn map_children(&self, mut f: impl FnMut(Id) -> Id) -> Node {
        Node { op: self.op.clone(), children: self.children.iter().map(|&c| f(c)).collect() }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.children.is_empty() {
            write!(f, "{}", self.op.name())
        } else {
            write!(f, "({}", self.op.name())?;
            for c in &self.children {
                write!(f, " {c}")?;
            }
            write!(f, ")")
        }
    }
}

/// A pattern term: either a pattern variable (`?x`) or an operator applied to
/// sub-patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// A pattern variable that may bind to any e-class.
    Var(String),
    /// An operator node with sub-patterns as children.
    Node(Op, Vec<Pattern>),
}

impl Pattern {
    /// Parses a pattern from an s-expression, e.g. `"(+ ?a (* ?b ?c))"`.
    ///
    /// Operator tokens are `+ - * / pow sin cos sqrt exp ln neg`; `-` with one argument
    /// is negation and with two is subtraction. Bare numbers and `pi` are constants, and
    /// any other bare token is a *concrete* variable (rarely useful in rules but allowed).
    ///
    /// # Panics
    ///
    /// Panics on malformed pattern text. Patterns are compile-time string literals inside
    /// this crate, so a malformed pattern is a programming error.
    pub fn parse(text: &str) -> Pattern {
        let tokens = tokenize_sexpr(text);
        let mut pos = 0usize;
        let p = parse_pattern(&tokens, &mut pos);
        assert_eq!(pos, tokens.len(), "trailing tokens in pattern '{text}'");
        p
    }

    /// The set of pattern-variable names used by this pattern.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Pattern::Node(_, children) => {
                for c in children {
                    c.collect_vars(out);
                }
            }
        }
    }
}

fn tokenize_sexpr(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' | ')' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn parse_pattern(tokens: &[String], pos: &mut usize) -> Pattern {
    let token = tokens.get(*pos).unwrap_or_else(|| panic!("unexpected end of pattern"));
    if token == "(" {
        *pos += 1;
        let head = tokens[*pos].clone();
        *pos += 1;
        let mut children = Vec::new();
        while tokens[*pos] != ")" {
            children.push(parse_pattern(tokens, pos));
        }
        *pos += 1; // consume ')'
        let op = match (head.as_str(), children.len()) {
            ("+", 2) => Op::Add,
            ("-", 1) | ("neg", 1) => Op::Neg,
            ("-", 2) => Op::Sub,
            ("*", 2) => Op::Mul,
            ("/", 2) => Op::Div,
            ("pow", 2) => Op::Pow,
            ("sin", 1) => Op::Sin,
            ("cos", 1) => Op::Cos,
            ("sqrt", 1) => Op::Sqrt,
            ("exp", 1) => Op::Exp,
            ("ln", 1) => Op::Ln,
            (other, n) => panic!("unknown pattern operator '{other}' with {n} children"),
        };
        Pattern::Node(op, children)
    } else {
        *pos += 1;
        if let Some(rest) = token.strip_prefix('?') {
            Pattern::Var(rest.to_string())
        } else if token == "pi" {
            Pattern::Node(Op::Pi, Vec::new())
        } else if let Ok(v) = token.parse::<f64>() {
            Pattern::Node(Op::constant(v), Vec::new())
        } else {
            Pattern::Node(Op::Var(token.clone()), Vec::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_arity_and_constants() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Sin.arity(), 1);
        assert_eq!(Op::Pi.arity(), 0);
        assert_eq!(Op::constant(2.0).as_const(), Some(2.0));
        assert!((Op::Pi.as_const().unwrap() - std::f64::consts::PI).abs() < 1e-15);
        assert_eq!(Op::Var("x".into()).as_const(), None);
    }

    #[test]
    fn node_display() {
        let n = Node::new(Op::Add, vec![Id(0), Id(1)]);
        assert_eq!(n.to_string(), "(+ e0 e1)");
        assert_eq!(Node::leaf(Op::Pi).to_string(), "pi");
    }

    #[test]
    fn pattern_parsing() {
        let p = Pattern::parse("(+ ?a (* ?b ?c))");
        match &p {
            Pattern::Node(Op::Add, children) => {
                assert!(matches!(children[0], Pattern::Var(ref v) if v == "a"));
                assert!(matches!(children[1], Pattern::Node(Op::Mul, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.variables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn pattern_parses_constants_and_unary_minus() {
        let p = Pattern::parse("(* 2 (sin ?x))");
        match p {
            Pattern::Node(Op::Mul, children) => {
                assert!(matches!(children[0], Pattern::Node(Op::Const(_), _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = Pattern::parse("(- ?x)");
        assert!(matches!(p, Pattern::Node(Op::Neg, _)));
        let p = Pattern::parse("(- ?x ?y)");
        assert!(matches!(p, Pattern::Node(Op::Sub, _)));
        let p = Pattern::parse("pi");
        assert!(matches!(p, Pattern::Node(Op::Pi, _)));
    }

    #[test]
    #[should_panic(expected = "unknown pattern operator")]
    fn pattern_rejects_unknown_operator() {
        Pattern::parse("(sinh ?x)");
    }

    #[test]
    fn map_children_applies_function() {
        let n = Node::new(Op::Mul, vec![Id(3), Id(4)]);
        let m = n.map_children(|id| Id(id.0 + 10));
        assert_eq!(m.children, vec![Id(13), Id(14)]);
    }
}
