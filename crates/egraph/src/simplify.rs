//! High-level simplification entry point used by the expression JIT pipeline.
//!
//! The pipeline (Fig. 3 of the paper) populates one e-graph with *all* the real and
//! imaginary component expressions of a gate's unitary and its gradient, runs equality
//! saturation, and then extracts each root in turn with the CSE-aware greedy extractor.

use qudit_qgl::Expr;

use crate::cost::OpCost;
use crate::egraph::EGraph;
use crate::extract::GreedyExtractor;
use crate::rewrite::{RunReport, Runner};
use crate::rules::default_rules;

/// Configuration for a simplification pass.
#[derive(Debug, Clone)]
pub struct SimplifyConfig {
    /// Maximum saturation iterations.
    pub iter_limit: usize,
    /// Maximum e-node count before saturation is cut short.
    pub node_limit: usize,
    /// Whether to run the rewrite rules at all (disabled by the ablation benchmark; the
    /// extraction then simply reproduces the input expressions).
    pub enable_rules: bool,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        // QGL gate expressions are small and sparse; the paper notes their e-graphs are
        // not expected to grow large, and applies iteration/node safeguards. Tight
        // limits keep the AOT cost negligible relative to the optimization loop.
        SimplifyConfig { iter_limit: 6, node_limit: 4_000, enable_rules: true }
    }
}

/// Counts the number of *distinct* `sin`/`cos` subexpressions across a batch.
///
/// With common subexpression elimination, a trig term that appears in several output
/// expressions is computed once, so uniqueness (not per-tree occurrence) is the measure
/// the Table-I cost model actually optimizes.
pub fn unique_trig_count(exprs: &[Expr]) -> usize {
    use std::collections::HashSet;
    fn walk(e: &Expr, set: &mut HashSet<Expr>) {
        match e {
            Expr::Sin(a) | Expr::Cos(a) => {
                set.insert(e.clone());
                walk(a, set);
            }
            Expr::Const(_) | Expr::Pi | Expr::Var(_) => {}
            Expr::Neg(a) | Expr::Sqrt(a) | Expr::Exp(a) | Expr::Ln(a) => walk(a, set),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => {
                walk(a, set);
                walk(b, set);
            }
        }
    }
    let mut set = HashSet::new();
    for e in exprs {
        walk(e, &mut set);
    }
    set.len()
}

/// The outcome of a simplification pass.
#[derive(Debug, Clone)]
pub struct SimplifyResult {
    /// The simplified expressions, in the same order as the inputs.
    pub exprs: Vec<Expr>,
    /// The saturation report (iterations, unions, node count), if rules were run.
    pub report: Option<RunReport>,
    /// Number of distinct `sin`/`cos` subexpressions before simplification.
    pub trig_before: usize,
    /// Number of distinct `sin`/`cos` subexpressions after simplification (with CSE,
    /// each distinct term is computed once).
    pub trig_after: usize,
    /// Total node count before simplification.
    pub nodes_before: usize,
    /// Total node count after simplification.
    pub nodes_after: usize,
}

/// Simplifies a batch of related expressions together (sharing one e-graph so that CSE
/// can act across them), using the default rule set and cost model.
pub fn simplify_batch(exprs: &[Expr]) -> Vec<Expr> {
    simplify_batch_with(exprs, &SimplifyConfig::default()).exprs
}

/// Simplifies a batch with an explicit configuration, returning statistics alongside the
/// simplified expressions.
pub fn simplify_batch_with(exprs: &[Expr], config: &SimplifyConfig) -> SimplifyResult {
    let trig_before = unique_trig_count(exprs);
    let nodes_before: usize = exprs.iter().map(Expr::node_count).sum();

    let mut graph = EGraph::new();
    let roots: Vec<_> = exprs.iter().map(|e| graph.add_expr(e)).collect();
    let report = if config.enable_rules {
        Some(Runner::new(config.iter_limit, config.node_limit).run(&mut graph, &default_rules()))
    } else {
        None
    };
    let mut extractor = GreedyExtractor::new(&graph, OpCost::new());
    let out = extractor.extract_many(&roots);

    let trig_after = unique_trig_count(&out);
    let nodes_after: usize = out.iter().map(Expr::node_count).sum();
    SimplifyResult { exprs: out, report, trig_before, trig_after, nodes_before, nodes_after }
}

/// Simplifies a single expression.
pub fn simplify(expr: &Expr) -> Expr {
    simplify_batch(std::slice::from_ref(expr)).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_qgl::diff::diff;
    use qudit_qgl::UnitaryExpression;

    #[test]
    fn simplify_preserves_value_on_gate_expressions() {
        let u3 = UnitaryExpression::new(
            "U3(a, b, c) {
                [
                    [ cos(a/2), ~ e^(i*c) * sin(a/2) ],
                    [ e^(i*b) * sin(a/2), e^(i*(b+c)) * cos(a/2) ],
                ]
            }",
        )
        .unwrap();
        // Gather all component expressions of the unitary and its gradient.
        let mut exprs = Vec::new();
        for row in u3.elements() {
            for el in row {
                exprs.push(el.re.clone());
                exprs.push(el.im.clone());
            }
        }
        for g in u3.gradient() {
            for row in &g {
                for el in row {
                    exprs.push(el.re.clone());
                    exprs.push(el.im.clone());
                }
            }
        }
        let result = simplify_batch_with(&exprs, &SimplifyConfig::default());
        assert_eq!(result.exprs.len(), exprs.len());
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let point = [0.8, -0.4, 1.9];
        for (orig, simp) in exprs.iter().zip(result.exprs.iter()) {
            let a = orig.eval_with(&names, &point);
            let b = simp.eval_with(&names, &point);
            assert!((a - b).abs() < 1e-10, "{orig} simplified to {simp}: {a} vs {b}");
        }
        // Simplification should not make things more trig-heavy overall.
        assert!(result.trig_after <= result.trig_before);
    }

    #[test]
    fn gradient_of_rz_phase_simplifies() {
        // d/dθ cos(θ/2) appears throughout the benchmark gates; check the gradient
        // batch shrinks or at least does not grow.
        let theta = Expr::var("t");
        let c = Expr::cos(Expr::div(theta.clone(), Expr::constant(2.0)));
        let s = Expr::sin(Expr::div(theta.clone(), Expr::constant(2.0)));
        let dc = diff(&c, "t");
        let ds = diff(&s, "t");
        let result = simplify_batch_with(&[c, s, dc, ds], &SimplifyConfig::default());
        assert!(result.nodes_after <= result.nodes_before);
        assert!(result.trig_after <= result.trig_before);
        assert!(result.report.is_some());
    }

    #[test]
    fn rules_disabled_reproduces_input() {
        let e = Expr::mul(Expr::sin(Expr::var("x")), Expr::cos(Expr::var("x")));
        let cfg = SimplifyConfig { enable_rules: false, ..SimplifyConfig::default() };
        let r = simplify_batch_with(std::slice::from_ref(&e), &cfg);
        assert!(r.report.is_none());
        let names = vec!["x".to_string()];
        assert!((r.exprs[0].eval_with(&names, &[0.3]) - e.eval_with(&names, &[0.3])).abs() < 1e-15);
    }

    #[test]
    fn simplify_single_entry_point() {
        let t = Expr::var("t");
        let e = Expr::Add(
            std::sync::Arc::new(Expr::mul(Expr::sin(t.clone()), Expr::sin(t.clone()))),
            std::sync::Arc::new(Expr::mul(Expr::cos(t.clone()), Expr::cos(t))),
        );
        assert_eq!(simplify(&e), Expr::one());
    }
}
