//! Constant folding of *instantiated* parameter values back into symbolic form.
//!
//! Numerical instantiation frequently drives parameters onto the special angles a gate
//! set is built around — 0, ±π/2, ±π, ±2π. Snapping such a value to its exact symbolic
//! constant and substituting it into the gate's element expressions lets the e-graph
//! simplifier fold the now-constant subtrees (`cos(0) → 1`, `e^(i·π) → −1`, …), which
//! both cleans up the reported parameters and shrinks any expression re-compiled for
//! the refined circuit. The post-synthesis refinement pass in `qudit-synth` is the
//! main consumer.

use qudit_qgl::Expr;

use crate::simplify::{simplify_batch_with, SimplifyConfig, SimplifyResult};

/// A parameter value recognized as a symbolic constant.
#[derive(Debug, Clone)]
pub struct SymbolicSnap {
    /// The exact numeric value of the constant (e.g. `std::f64::consts::PI`).
    pub value: f64,
    /// The symbolic expression of the constant (e.g. `Expr::Pi`).
    pub expr: Expr,
}

/// Recognizes an instantiated value as one of the symbolic constants synthesis
/// parameters habitually converge to: `0`, `±π/2`, `±π`, `±2π`. Returns the exact
/// numeric value and its symbolic expression when `value` is within `tol`, and `None`
/// otherwise (or when `tol` is non-positive, which disables snapping).
pub fn snap_to_symbolic(value: f64, tol: f64) -> Option<SymbolicSnap> {
    use std::f64::consts::PI;
    if tol <= 0.0 {
        return None;
    }
    let candidates: [(f64, fn() -> Expr); 7] = [
        (0.0, Expr::zero),
        (PI / 2.0, || Expr::div(Expr::Pi, Expr::constant(2.0))),
        (-PI / 2.0, || Expr::neg(Expr::div(Expr::Pi, Expr::constant(2.0)))),
        (PI, || Expr::Pi),
        (-PI, || Expr::neg(Expr::Pi)),
        (2.0 * PI, || Expr::mul(Expr::constant(2.0), Expr::Pi)),
        (-2.0 * PI, || Expr::neg(Expr::mul(Expr::constant(2.0), Expr::Pi))),
    ];
    for (exact, make_expr) in candidates {
        if (value - exact).abs() <= tol {
            return Some(SymbolicSnap { value: exact, expr: make_expr() });
        }
    }
    None
}

/// The outcome of folding a parameter vector: the (possibly snapped) values, the
/// symbolic expression of every snapped entry, and how many entries snapped.
#[derive(Debug, Clone)]
pub struct ParamFold {
    /// The parameter vector with snapped entries replaced by their exact constants.
    pub params: Vec<f64>,
    /// Per-parameter symbolic constant, `None` where the value did not snap.
    pub symbolic: Vec<Option<Expr>>,
    /// Number of snapped entries.
    pub folded: usize,
}

/// Snaps every entry of an instantiated parameter vector that lies within `tol` of a
/// symbolic constant (see [`snap_to_symbolic`]). The caller is responsible for
/// re-validating the circuit at the snapped values — snapping moves each entry by at
/// most `tol`, so near an optimum the infidelity shift is O(`tol`²).
pub fn fold_params(params: &[f64], tol: f64) -> ParamFold {
    let mut out = ParamFold {
        params: Vec::with_capacity(params.len()),
        symbolic: Vec::with_capacity(params.len()),
        folded: 0,
    };
    for &value in params {
        match snap_to_symbolic(value, tol) {
            Some(snap) => {
                out.params.push(snap.value);
                out.symbolic.push(Some(snap.expr));
                out.folded += 1;
            }
            None => {
                out.params.push(value);
                out.symbolic.push(None);
            }
        }
    }
    out
}

/// Substitutes snapped parameter values into a gate's element expressions and runs the
/// e-graph simplifier over the batch, folding the now-constant subtrees.
///
/// `names` and `values` describe the gate's parameters in order; every value within
/// `tol` of a symbolic constant is substituted symbolically (the rest stay free
/// variables, so partially-constant gates still fold what they can). Shares one
/// e-graph across the whole batch, so common subexpressions fold once.
pub fn fold_elements(exprs: &[Expr], names: &[String], values: &[f64], tol: f64) -> SimplifyResult {
    assert_eq!(names.len(), values.len(), "one value per parameter name");
    let substituted: Vec<Expr> = exprs
        .iter()
        .map(|e| {
            let mut folded = e.clone();
            for (name, &value) in names.iter().zip(values.iter()) {
                if let Some(snap) = snap_to_symbolic(value, tol) {
                    folded = folded.substitute(name, &snap.expr);
                }
            }
            folded
        })
        .collect();
    simplify_batch_with(&substituted, &SimplifyConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn snapping_recognizes_special_angles_within_tolerance() {
        for (value, exact) in [
            (1e-9, 0.0),
            (PI + 3e-8, PI),
            (-PI - 1e-8, -PI),
            (PI / 2.0 - 2e-8, PI / 2.0),
            (2.0 * PI + 1e-8, 2.0 * PI),
        ] {
            let snap = snap_to_symbolic(value, 1e-6).expect("within tolerance");
            assert_eq!(snap.value, exact, "snapping {value}");
            assert!(
                (snap.expr.as_const().unwrap_or_else(|| eval_closed(&snap.expr)) - exact).abs()
                    < 1e-12
            );
        }
        assert!(snap_to_symbolic(0.3, 1e-6).is_none());
        assert!(snap_to_symbolic(PI + 1e-3, 1e-6).is_none());
        // A non-positive tolerance disables snapping entirely.
        assert!(snap_to_symbolic(0.0, 0.0).is_none());
    }

    /// Evaluates a closed (variable-free) expression.
    fn eval_closed(e: &Expr) -> f64 {
        e.eval_with(&[], &[])
    }

    #[test]
    fn fold_params_snaps_and_counts() {
        let fold = fold_params(&[1e-9, 0.7, PI - 1e-8, -2.0 * PI + 2e-8], 1e-6);
        assert_eq!(fold.folded, 3);
        assert_eq!(fold.params[0], 0.0);
        assert_eq!(fold.params[1], 0.7);
        assert_eq!(fold.params[2], PI);
        assert_eq!(fold.params[3], -2.0 * PI);
        assert!(fold.symbolic[1].is_none());
        assert!(fold.symbolic[2].is_some());
    }

    #[test]
    fn fold_elements_reduces_constant_gates() {
        // The U3 diagonal at θ ≈ 0: cos(θ/2) must fold to the constant 1, and the
        // off-diagonal sin(θ/2) to 0.
        let theta = Expr::var("theta");
        let diag = Expr::cos(Expr::div(theta.clone(), Expr::constant(2.0)));
        let off = Expr::sin(Expr::div(theta, Expr::constant(2.0)));
        let names = vec!["theta".to_string()];
        let result = fold_elements(&[diag.clone(), off.clone()], &names, &[1e-9], 1e-6);
        assert_eq!(result.exprs[0], Expr::one());
        assert_eq!(result.exprs[1], Expr::zero());
        assert!(result.nodes_after <= result.nodes_before);

        // A value that does not snap leaves the expression parameterized.
        let kept = fold_elements(&[diag], &names, &[0.4], 1e-6);
        let a = kept.exprs[0].eval_with(&names, &[0.4]);
        assert!((a - (0.2f64).cos()).abs() < 1e-12);
    }
}
