//! Cost functions for numerical instantiation.
//!
//! The optimization target is Eq. (1) of the paper, the Hilbert–Schmidt infidelity
//! `1 − |Tr(U†_target U(θ))| / D`, which is invariant under a global phase. The
//! Levenberg–Marquardt optimizer works on a least-squares residual vector — following the
//! convention of BQSKit's Hilbert–Schmidt residual generator, the residuals are the real
//! and imaginary parts of the element-wise difference `U(θ) − U_target`, while success is
//! always judged by the phase-invariant infidelity.

use qudit_tensor::Matrix;

/// Hilbert–Schmidt infidelity `1 − |Tr(U†_target U)| / D` (Eq. 1 of the paper).
pub fn hs_infidelity(target: &Matrix<f64>, u: &Matrix<f64>) -> f64 {
    let d = target.rows() as f64;
    let overlap = target.hs_inner(u).abs();
    (1.0 - overlap / d).max(0.0)
}

/// Number of residual entries produced for a `dim × dim` target.
pub fn residual_len(dim: usize) -> usize {
    2 * dim * dim
}

/// Writes the residual vector `[Re(U − T)…, Im(U − T)…]` into `out`.
///
/// # Panics
///
/// Panics if shapes disagree or `out` is too short.
pub fn residuals_into(target: &Matrix<f64>, u: &Matrix<f64>, out: &mut [f64]) {
    assert_eq!(target.rows(), u.rows(), "target/unitary shape mismatch");
    assert_eq!(target.cols(), u.cols(), "target/unitary shape mismatch");
    let n = target.rows() * target.cols();
    assert!(out.len() >= 2 * n, "residual buffer too small");
    for (k, (t, v)) in target.as_slice().iter().zip(u.as_slice().iter()).enumerate() {
        out[k] = v.re - t.re;
        out[n + k] = v.im - t.im;
    }
}

/// Writes the Jacobian column for one parameter (`[Re(∂U)…, Im(∂U)…]`) into `out`.
///
/// # Panics
///
/// Panics if `out` is too short.
pub fn jacobian_column_into(grad: &Matrix<f64>, out: &mut [f64]) {
    let n = grad.rows() * grad.cols();
    assert!(out.len() >= 2 * n, "jacobian buffer too small");
    for (k, g) in grad.as_slice().iter().enumerate() {
        out[k] = g.re;
        out[n + k] = g.im;
    }
}

/// Sum of squared residuals (the quantity Levenberg–Marquardt decreases monotonically).
pub fn sum_of_squares(residuals: &[f64]) -> f64 {
    residuals.iter().map(|r| r * r).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_tensor::C64;

    fn phase(m: &Matrix<f64>, theta: f64) -> Matrix<f64> {
        m.scale(C64::cis(theta))
    }

    #[test]
    fn infidelity_of_identical_unitaries_is_zero() {
        let u = Matrix::<f64>::identity(4);
        assert!(hs_infidelity(&u, &u) < 1e-15);
    }

    #[test]
    fn infidelity_is_phase_invariant() {
        let u = Matrix::<f64>::identity(4);
        let v = phase(&u, 1.234);
        assert!(hs_infidelity(&u, &v) < 1e-12);
    }

    #[test]
    fn infidelity_of_orthogonal_unitaries_is_one() {
        let i2 = Matrix::<f64>::identity(2);
        let x = Matrix::from_rows(&[vec![C64::zero(), C64::one()], vec![C64::one(), C64::zero()]]);
        assert!((hs_infidelity(&i2, &x) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn residuals_zero_iff_equal() {
        let u = Matrix::<f64>::identity(2);
        let mut r = vec![0.0; residual_len(2)];
        residuals_into(&u, &u, &mut r);
        assert!(sum_of_squares(&r) < 1e-30);
        let x = Matrix::from_rows(&[vec![C64::zero(), C64::one()], vec![C64::one(), C64::zero()]]);
        residuals_into(&u, &x, &mut r);
        assert!((sum_of_squares(&r) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn jacobian_column_layout_matches_residual_layout() {
        let g = Matrix::from_fn(2, 2, |r, c| C64::new((r * 2 + c) as f64, -((r * 2 + c) as f64)));
        let mut col = vec![0.0; residual_len(2)];
        jacobian_column_into(&g, &mut col);
        assert_eq!(col[..4], [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(col[4..], [0.0, -1.0, -2.0, -3.0]);
    }
}
