//! A from-scratch Levenberg–Marquardt optimizer.
//!
//! The paper deliberately evaluates OpenQudit with a *naive* LM implementation so that the
//! measured speedups isolate the cost of the underlying unitary/gradient evaluation
//! (Sec. VI-A). This module is that optimizer; both the TNVM-backed path and the
//! BQSKit-style baseline engine drive it through the same [`GradientEvaluator`] trait, so
//! optimizer quality is never a confounder in the benchmarks.

use qudit_tensor::Matrix;

use crate::cost::{jacobian_column_into, residual_len, residuals_into, sum_of_squares};

/// Anything that can produce a unitary and its gradient for a parameter vector.
///
/// Implemented by the TNVM adapter (`qudit-optimize::tnvm_eval`) and by the baseline
/// engine in `qudit-baseline`.
pub trait GradientEvaluator {
    /// Number of real parameters.
    fn num_params(&self) -> usize;
    /// The unitary dimension.
    fn dim(&self) -> usize;
    /// Evaluates the unitary and all partial derivatives at `params`.
    fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>);
}

/// Configuration of the Levenberg–Marquardt loop.
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Maximum number of LM iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative λ adjustment factor.
    pub lambda_factor: f64,
    /// Stop when the sum of squared residuals falls below this value.
    pub cost_tolerance: f64,
    /// Stop when the step norm falls below this value.
    pub step_tolerance: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iterations: 100,
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            cost_tolerance: 1e-16,
            step_tolerance: 1e-12,
        }
    }
}

/// The outcome of one LM run.
#[derive(Debug, Clone)]
pub struct LmResult {
    /// The best parameters found.
    pub params: Vec<f64>,
    /// The final sum of squared residuals.
    pub cost: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether a tolerance criterion was met (as opposed to exhausting iterations).
    pub converged: bool,
}

/// Minimizes `‖U(θ) − U_target‖²` (element-wise least squares) with Levenberg–Marquardt.
pub fn minimize(
    evaluator: &mut dyn GradientEvaluator,
    target: &Matrix<f64>,
    x0: &[f64],
    config: &LmConfig,
) -> LmResult {
    let n = evaluator.num_params();
    assert_eq!(x0.len(), n, "initial guess has wrong length");
    let dim = evaluator.dim();
    let m = residual_len(dim);

    let mut params = x0.to_vec();
    let mut residuals = vec![0.0; m];
    let mut jacobian = vec![0.0; m * n]; // column-major: column k at [k*m .. (k+1)*m]
    let mut lambda = config.initial_lambda;

    let (mut unitary, mut grads) = evaluator.evaluate(&params);
    residuals_into(target, &unitary, &mut residuals);
    let mut cost = sum_of_squares(&residuals);

    let mut iterations = 0;
    let mut converged = false;

    while iterations < config.max_iterations {
        iterations += 1;
        if cost < config.cost_tolerance {
            converged = true;
            break;
        }
        // Assemble the Jacobian at the current point.
        for (k, g) in grads.iter().enumerate() {
            jacobian_column_into(g, &mut jacobian[k * m..(k + 1) * m]);
        }
        // Normal equations: (JᵀJ + λ diag(JᵀJ)) δ = −Jᵀ r.
        let mut jtj = vec![0.0; n * n];
        let mut jtr = vec![0.0; n];
        for a in 0..n {
            let col_a = &jacobian[a * m..(a + 1) * m];
            for b in a..n {
                let col_b = &jacobian[b * m..(b + 1) * m];
                let dot: f64 = col_a.iter().zip(col_b).map(|(x, y)| x * y).sum();
                jtj[a * n + b] = dot;
                jtj[b * n + a] = dot;
            }
            jtr[a] = -col_a.iter().zip(residuals.iter()).map(|(x, y)| x * y).sum::<f64>();
        }

        let mut improved = false;
        for _ in 0..8 {
            // Damped system.
            let mut system = jtj.clone();
            for d in 0..n {
                system[d * n + d] += lambda * jtj[d * n + d].max(1e-12);
            }
            let Some(step) = solve_linear_system(&system, &jtr, n) else {
                lambda *= config.lambda_factor;
                continue;
            };
            let step_norm: f64 = step.iter().map(|s| s * s).sum::<f64>().sqrt();
            let candidate: Vec<f64> = params.iter().zip(step.iter()).map(|(p, s)| p + s).collect();
            let (cand_unitary, cand_grads) = evaluator.evaluate(&candidate);
            let mut cand_residuals = vec![0.0; m];
            residuals_into(target, &cand_unitary, &mut cand_residuals);
            let cand_cost = sum_of_squares(&cand_residuals);
            if cand_cost < cost {
                params = candidate;
                unitary = cand_unitary;
                grads = cand_grads;
                residuals = cand_residuals;
                cost = cand_cost;
                lambda = (lambda / config.lambda_factor).max(1e-12);
                improved = true;
                if step_norm < config.step_tolerance {
                    converged = true;
                }
                break;
            }
            lambda *= config.lambda_factor;
        }
        if !improved {
            // No damping value produced a decrease: treat as (local) convergence.
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }
    let _ = unitary;
    LmResult { params, cost, iterations, converged }
}

/// Solves a dense symmetric positive-definite-ish system `A x = b` by Gaussian elimination
/// with partial pivoting. Returns `None` if the system is numerically singular.
pub fn solve_linear_system(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert!(a.len() >= n * n && b.len() >= n, "system buffers too small");
    let mut aug = vec![0.0; n * (n + 1)];
    for r in 0..n {
        aug[r * (n + 1)..r * (n + 1) + n].copy_from_slice(&a[r * n..(r + 1) * n]);
        aug[r * (n + 1) + n] = b[r];
    }
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = aug[col * (n + 1) + col].abs();
        for r in col + 1..n {
            let v = aug[r * (n + 1) + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..=n {
                aug.swap(col * (n + 1) + k, pivot * (n + 1) + k);
            }
        }
        let diag = aug[col * (n + 1) + col];
        for r in col + 1..n {
            let factor = aug[r * (n + 1) + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                aug[r * (n + 1) + k] -= factor * aug[col * (n + 1) + k];
            }
        }
    }
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = aug[r * (n + 1) + n];
        for k in r + 1..n {
            acc -= aug[r * (n + 1) + k] * x[k];
        }
        let diag = aug[r * (n + 1) + r];
        if diag.abs() < 1e-300 {
            return None;
        }
        x[r] = acc / diag;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_tensor::{Matrix, C64};

    #[test]
    fn linear_solver_inverts_small_systems() {
        // 2x2 system.
        let a = [4.0, 1.0, 1.0, 3.0];
        let b = [1.0, 2.0];
        let x = solve_linear_system(&a, &b, 2).unwrap();
        assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
        assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
        // Singular system returns None.
        let singular = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_linear_system(&singular, &b, 2).is_none());
    }

    /// A toy evaluator: U(θ) = RZ(θ0) RX(θ1) as explicit closed forms.
    struct ToyEvaluator;

    impl GradientEvaluator for ToyEvaluator {
        fn num_params(&self) -> usize {
            2
        }
        fn dim(&self) -> usize {
            2
        }
        fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>) {
            let (a, b) = (params[0], params[1]);
            let rz = Matrix::from_rows(&[
                vec![C64::cis(-a / 2.0), C64::zero()],
                vec![C64::zero(), C64::cis(a / 2.0)],
            ]);
            let rx = Matrix::from_rows(&[
                vec![C64::from_real((b / 2.0).cos()), C64::new(0.0, -(b / 2.0).sin())],
                vec![C64::new(0.0, -(b / 2.0).sin()), C64::from_real((b / 2.0).cos())],
            ]);
            let u = rz.matmul(&rx);
            let drz = Matrix::from_rows(&[
                vec![C64::cis(-a / 2.0) * C64::new(0.0, -0.5), C64::zero()],
                vec![C64::zero(), C64::cis(a / 2.0) * C64::new(0.0, 0.5)],
            ]);
            let drx = Matrix::from_rows(&[
                vec![C64::from_real(-0.5 * (b / 2.0).sin()), C64::new(0.0, -0.5 * (b / 2.0).cos())],
                vec![C64::new(0.0, -0.5 * (b / 2.0).cos()), C64::from_real(-0.5 * (b / 2.0).sin())],
            ]);
            (u.clone(), vec![drz.matmul(&rx), rz.matmul(&drx)])
        }
    }

    #[test]
    fn lm_recovers_known_parameters() {
        let mut evaluator = ToyEvaluator;
        let target_params = [0.9, -1.3];
        let (target, _) = evaluator.evaluate(&target_params);
        let result = minimize(&mut evaluator, &target, &[0.1, 0.1], &LmConfig::default());
        assert!(result.cost < 1e-12, "cost {} after {} iterations", result.cost, result.iterations);
        let (found, _) = evaluator.evaluate(&result.params);
        assert!(found.max_elementwise_distance(&target) < 1e-6);
    }

    #[test]
    fn lm_converges_from_multiple_starts() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[2.2, 0.4]);
        for start in [[0.0, 0.0], [1.0, -1.0], [-2.0, 2.0]] {
            let result = minimize(&mut evaluator, &target, &start, &LmConfig::default());
            assert!(result.cost < 1e-10, "start {start:?} ended at cost {}", result.cost);
        }
    }

    #[test]
    fn lm_respects_iteration_budget() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[2.2, 0.4]);
        let config = LmConfig { max_iterations: 1, ..LmConfig::default() };
        let result = minimize(&mut evaluator, &target, &[0.0, 0.0], &config);
        assert!(result.iterations <= 1);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn lm_validates_initial_guess() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[0.1, 0.2]);
        minimize(&mut evaluator, &target, &[0.0], &LmConfig::default());
    }
}
