//! A from-scratch Levenberg–Marquardt optimizer.
//!
//! The paper deliberately evaluates OpenQudit with a *naive* LM implementation so that the
//! measured speedups isolate the cost of the underlying unitary/gradient evaluation
//! (Sec. VI-A). This module is that optimizer; both the TNVM-backed path and the
//! BQSKit-style baseline engine drive it through the same [`GradientEvaluator`] trait, so
//! optimizer quality is never a confounder in the benchmarks.

use qudit_tensor::Matrix;
use qudit_tnvm::KernelCounters;

use crate::cost::{jacobian_column_into, residual_len, residuals_into, sum_of_squares};

/// Anything that can produce a unitary and its gradient for a parameter vector.
///
/// Implemented by the TNVM adapter (`qudit-optimize::tnvm_eval`) and by the baseline
/// engine in `qudit-baseline`.
pub trait GradientEvaluator {
    /// Number of real parameters.
    fn num_params(&self) -> usize;
    /// The unitary dimension.
    fn dim(&self) -> usize;
    /// Evaluates the unitary and all partial derivatives at `params`.
    fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>);
    /// Returns and resets the evaluator's accumulated kernel-dispatch counters.
    ///
    /// The default (for evaluators without a TNVM underneath, like the baseline
    /// engine) reports nothing; the TNVM adapter delegates to its VM. Instantiation
    /// drains this after every optimization start so kernel work can be attributed to
    /// deterministic join points.
    fn take_kernel_counters(&mut self) -> KernelCounters {
        KernelCounters::default()
    }
}

/// Configuration of the Levenberg–Marquardt loop.
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Maximum number of LM iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative λ adjustment factor.
    pub lambda_factor: f64,
    /// Stop when the sum of squared residuals falls below this value.
    pub cost_tolerance: f64,
    /// Stop when the step norm falls below this value.
    pub step_tolerance: f64,
    /// Accumulator lanes for the normal-equations assembly: `1` selects the strictly
    /// serial reference loop; any larger value selects the panel-packed assembly
    /// (which runs [`NE_PANEL`] lanes wide, matching the blocked TNVM tier's SoA
    /// panel). Both assemblies produce bit-identical `JᵀJ` and `Jᵀr`; instantiation
    /// derives this from the selected backend's target descriptor so the optimizer's
    /// inner loop follows the execution tier.
    pub panel_columns: usize,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iterations: 100,
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            cost_tolerance: 1e-16,
            step_tolerance: 1e-12,
            panel_columns: 1,
        }
    }
}

/// Lane width of the panel-packed normal-equations assembly; matches the blocked
/// TNVM tier's SoA panel width so one descriptor field governs both.
pub const NE_PANEL: usize = 8;

/// Reference normal-equations assembly: textbook column dot products, each one a
/// single strictly sequential accumulation chain.
fn assemble_normal_equations(
    jacobian: &[f64],
    residuals: &[f64],
    m: usize,
    n: usize,
    jtj: &mut [f64],
    jtr: &mut [f64],
) {
    for a in 0..n {
        let col_a = &jacobian[a * m..(a + 1) * m];
        for b in a..n {
            let col_b = &jacobian[b * m..(b + 1) * m];
            let dot: f64 = col_a.iter().zip(col_b).map(|(x, y)| x * y).sum();
            jtj[a * n + b] = dot;
            jtj[b * n + a] = dot;
        }
        jtr[a] = -col_a.iter().zip(residuals.iter()).map(|(x, y)| x * y).sum::<f64>();
    }
}

/// Panel-packed normal-equations assembly for execution tiers whose descriptor
/// reports more than one panel column.
///
/// Every dot product is **bit-identical** to [`assemble_normal_equations`]: each dot
/// still accumulates its `m` terms in ascending index order through its own scalar
/// chain. The speedup comes from running [`NE_PANEL`] *independent* chains side by
/// side — the reference loop's single chain is FMA-latency-bound (each `acc += x*y`
/// waits on the previous add), and strict FP semantics forbid the compiler from
/// splitting it. Interleaving eight columns into one row-major panel turns the inner
/// loop into eight independent accumulator lanes, which fills the FMA pipeline (and
/// vectorizes) without reassociating anything.
fn assemble_normal_equations_panel(
    jacobian: &[f64],
    residuals: &[f64],
    m: usize,
    n: usize,
    jtj: &mut [f64],
    jtr: &mut [f64],
    packed: &mut Vec<f64>,
) {
    let panels = n.div_ceil(NE_PANEL);
    packed.clear();
    packed.resize(panels * m * NE_PANEL, 0.0);
    // Interleave each run of NE_PANEL Jacobian columns: row `i` of panel `t` holds
    // element `i` of columns `t*NE_PANEL..(t+1)*NE_PANEL` (zero-padded ragged tail).
    for t in 0..panels {
        let panel = &mut packed[t * m * NE_PANEL..(t + 1) * m * NE_PANEL];
        for jj in 0..NE_PANEL.min(n - t * NE_PANEL) {
            let col = &jacobian[(t * NE_PANEL + jj) * m..(t * NE_PANEL + jj + 1) * m];
            for (i, &value) in col.iter().enumerate() {
                panel[i * NE_PANEL + jj] = value;
            }
        }
    }
    for a in 0..n {
        let col_a = &jacobian[a * m..(a + 1) * m];
        // Only panels containing some column b ≥ a are needed; the boundary panel
        // computes (and discards) up to NE_PANEL−1 dots with b < a.
        for t in a / NE_PANEL..panels {
            let panel = &packed[t * m * NE_PANEL..(t + 1) * m * NE_PANEL];
            let mut acc = [0.0f64; NE_PANEL];
            for (i, &x) in col_a.iter().enumerate() {
                let row = <&[f64; NE_PANEL]>::try_from(&panel[i * NE_PANEL..(i + 1) * NE_PANEL])
                    .expect("panel row width");
                for (lane, acc) in acc.iter_mut().enumerate() {
                    *acc += x * row[lane];
                }
            }
            for (lane, dot) in acc.into_iter().enumerate() {
                let b = t * NE_PANEL + lane;
                if b >= a && b < n {
                    jtj[a * n + b] = dot;
                    jtj[b * n + a] = dot;
                }
            }
        }
    }
    // Jᵀr reuses the packed panels: lanes are still columns, the shared operand is r.
    for t in 0..panels {
        let panel = &packed[t * m * NE_PANEL..(t + 1) * m * NE_PANEL];
        let mut acc = [0.0f64; NE_PANEL];
        for (i, &r) in residuals.iter().enumerate() {
            let row = <&[f64; NE_PANEL]>::try_from(&panel[i * NE_PANEL..(i + 1) * NE_PANEL])
                .expect("panel row width");
            for (lane, acc) in acc.iter_mut().enumerate() {
                *acc += row[lane] * r;
            }
        }
        for (lane, dot) in acc.into_iter().enumerate() {
            let b = t * NE_PANEL + lane;
            if b < n {
                jtr[b] = -dot;
            }
        }
    }
}

/// The outcome of one LM run.
#[derive(Debug, Clone)]
pub struct LmResult {
    /// The best parameters found.
    pub params: Vec<f64>,
    /// The final sum of squared residuals.
    pub cost: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether a tolerance criterion was met (as opposed to exhausting iterations).
    pub converged: bool,
}

/// Minimizes `‖U(θ) − U_target‖²` (element-wise least squares) with Levenberg–Marquardt.
pub fn minimize(
    evaluator: &mut dyn GradientEvaluator,
    target: &Matrix<f64>,
    x0: &[f64],
    config: &LmConfig,
) -> LmResult {
    let n = evaluator.num_params();
    assert_eq!(x0.len(), n, "initial guess has wrong length");
    let dim = evaluator.dim();
    let m = residual_len(dim);

    let mut params = x0.to_vec();
    let mut residuals = vec![0.0; m];
    let mut jacobian = vec![0.0; m * n]; // column-major: column k at [k*m .. (k+1)*m]
    let mut lambda = config.initial_lambda;
    // Below two panels' worth of columns the pack cost and boundary-panel waste eat
    // the lane-parallel win (measured break-even: n ≈ 2·NE_PANEL), so small problems
    // stay on the reference loop under every tier. Both paths are bit-identical, so
    // the gate is free to flip per problem.
    let use_panels = config.panel_columns > 1 && n >= 2 * NE_PANEL;
    let mut packed: Vec<f64> = Vec::new(); // panel-assembly scratch, reused across iterations

    let (mut unitary, mut grads) = evaluator.evaluate(&params);
    residuals_into(target, &unitary, &mut residuals);
    let mut cost = sum_of_squares(&residuals);

    let mut iterations = 0;
    let mut converged = false;

    while iterations < config.max_iterations {
        iterations += 1;
        if cost < config.cost_tolerance {
            converged = true;
            break;
        }
        // Assemble the Jacobian at the current point.
        for (k, g) in grads.iter().enumerate() {
            jacobian_column_into(g, &mut jacobian[k * m..(k + 1) * m]);
        }
        // Normal equations: (JᵀJ + λ diag(JᵀJ)) δ = −Jᵀ r. Both assemblies are
        // bit-identical; the tiers differ only in wall-clock.
        let mut jtj = vec![0.0; n * n];
        let mut jtr = vec![0.0; n];
        if use_panels {
            assemble_normal_equations_panel(
                &jacobian,
                &residuals,
                m,
                n,
                &mut jtj,
                &mut jtr,
                &mut packed,
            );
        } else {
            assemble_normal_equations(&jacobian, &residuals, m, n, &mut jtj, &mut jtr);
        }

        let mut improved = false;
        for _ in 0..8 {
            // Damped system.
            let mut system = jtj.clone();
            for d in 0..n {
                system[d * n + d] += lambda * jtj[d * n + d].max(1e-12);
            }
            let Some(step) = solve_linear_system(&system, &jtr, n) else {
                lambda *= config.lambda_factor;
                continue;
            };
            let step_norm: f64 = step.iter().map(|s| s * s).sum::<f64>().sqrt();
            let candidate: Vec<f64> = params.iter().zip(step.iter()).map(|(p, s)| p + s).collect();
            let (cand_unitary, cand_grads) = evaluator.evaluate(&candidate);
            let mut cand_residuals = vec![0.0; m];
            residuals_into(target, &cand_unitary, &mut cand_residuals);
            let cand_cost = sum_of_squares(&cand_residuals);
            if cand_cost < cost {
                params = candidate;
                unitary = cand_unitary;
                grads = cand_grads;
                residuals = cand_residuals;
                cost = cand_cost;
                lambda = (lambda / config.lambda_factor).max(1e-12);
                improved = true;
                if step_norm < config.step_tolerance {
                    converged = true;
                }
                break;
            }
            lambda *= config.lambda_factor;
        }
        if !improved {
            // No damping value produced a decrease: treat as (local) convergence.
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }
    let _ = unitary;
    LmResult { params, cost, iterations, converged }
}

/// Solves a dense symmetric positive-definite-ish system `A x = b` by Gaussian elimination
/// with partial pivoting. Returns `None` if the system is numerically singular.
pub fn solve_linear_system(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert!(a.len() >= n * n && b.len() >= n, "system buffers too small");
    let mut aug = vec![0.0; n * (n + 1)];
    for r in 0..n {
        aug[r * (n + 1)..r * (n + 1) + n].copy_from_slice(&a[r * n..(r + 1) * n]);
        aug[r * (n + 1) + n] = b[r];
    }
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = aug[col * (n + 1) + col].abs();
        for r in col + 1..n {
            let v = aug[r * (n + 1) + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..=n {
                aug.swap(col * (n + 1) + k, pivot * (n + 1) + k);
            }
        }
        let diag = aug[col * (n + 1) + col];
        for r in col + 1..n {
            let factor = aug[r * (n + 1) + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                aug[r * (n + 1) + k] -= factor * aug[col * (n + 1) + k];
            }
        }
    }
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = aug[r * (n + 1) + n];
        for k in r + 1..n {
            acc -= aug[r * (n + 1) + k] * x[k];
        }
        let diag = aug[r * (n + 1) + r];
        if diag.abs() < 1e-300 {
            return None;
        }
        x[r] = acc / diag;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_tensor::{Matrix, C64};

    #[test]
    fn linear_solver_inverts_small_systems() {
        // 2x2 system.
        let a = [4.0, 1.0, 1.0, 3.0];
        let b = [1.0, 2.0];
        let x = solve_linear_system(&a, &b, 2).unwrap();
        assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
        assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
        // Singular system returns None.
        let singular = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_linear_system(&singular, &b, 2).is_none());
    }

    /// A toy evaluator: U(θ) = RZ(θ0) RX(θ1) as explicit closed forms.
    struct ToyEvaluator;

    impl GradientEvaluator for ToyEvaluator {
        fn num_params(&self) -> usize {
            2
        }
        fn dim(&self) -> usize {
            2
        }
        fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>) {
            let (a, b) = (params[0], params[1]);
            let rz = Matrix::from_rows(&[
                vec![C64::cis(-a / 2.0), C64::zero()],
                vec![C64::zero(), C64::cis(a / 2.0)],
            ]);
            let rx = Matrix::from_rows(&[
                vec![C64::from_real((b / 2.0).cos()), C64::new(0.0, -(b / 2.0).sin())],
                vec![C64::new(0.0, -(b / 2.0).sin()), C64::from_real((b / 2.0).cos())],
            ]);
            let u = rz.matmul(&rx);
            let drz = Matrix::from_rows(&[
                vec![C64::cis(-a / 2.0) * C64::new(0.0, -0.5), C64::zero()],
                vec![C64::zero(), C64::cis(a / 2.0) * C64::new(0.0, 0.5)],
            ]);
            let drx = Matrix::from_rows(&[
                vec![C64::from_real(-0.5 * (b / 2.0).sin()), C64::new(0.0, -0.5 * (b / 2.0).cos())],
                vec![C64::new(0.0, -0.5 * (b / 2.0).cos()), C64::from_real(-0.5 * (b / 2.0).sin())],
            ]);
            (u.clone(), vec![drz.matmul(&rx), rz.matmul(&drx)])
        }
    }

    /// Deterministic pseudo-random values in (−0.5, 0.5) from a 64-bit LCG.
    fn lcg_values(count: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..count)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn panel_assembly_is_bit_identical_to_reference() {
        // Ragged n (not a multiple of NE_PANEL) exercises the zero-padded tail panel;
        // n < NE_PANEL exercises a single all-padding panel.
        for (m, n) in [(7usize, 3usize), (32, 8), (45, 13), (64, 21)] {
            let jacobian = lcg_values(m * n, (m * 1000 + n) as u64);
            let residuals = lcg_values(m, (m * 7 + n) as u64);
            let (mut jtj_ref, mut jtr_ref) = (vec![0.0; n * n], vec![0.0; n]);
            assemble_normal_equations(&jacobian, &residuals, m, n, &mut jtj_ref, &mut jtr_ref);
            let (mut jtj_panel, mut jtr_panel) = (vec![0.0; n * n], vec![0.0; n]);
            let mut packed = Vec::new();
            assemble_normal_equations_panel(
                &jacobian,
                &residuals,
                m,
                n,
                &mut jtj_panel,
                &mut jtr_panel,
                &mut packed,
            );
            for (i, (x, y)) in jtj_ref.iter().zip(&jtj_panel).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "JᵀJ[{i}] differs at m={m} n={n}");
            }
            for (i, (x, y)) in jtr_ref.iter().zip(&jtr_panel).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "Jᵀr[{i}] differs at m={m} n={n}");
            }
        }
    }

    #[test]
    fn panel_lanes_do_not_change_lm_results() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[0.9, -1.3]);
        let reference = minimize(&mut evaluator, &target, &[0.1, 0.1], &LmConfig::default());
        let panel_config = LmConfig { panel_columns: NE_PANEL, ..LmConfig::default() };
        let panel = minimize(&mut evaluator, &target, &[0.1, 0.1], &panel_config);
        assert_eq!(reference.iterations, panel.iterations);
        assert_eq!(reference.cost.to_bits(), panel.cost.to_bits());
        let bits = |p: &[f64]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&reference.params), bits(&panel.params));
    }

    #[test]
    fn lm_recovers_known_parameters() {
        let mut evaluator = ToyEvaluator;
        let target_params = [0.9, -1.3];
        let (target, _) = evaluator.evaluate(&target_params);
        let result = minimize(&mut evaluator, &target, &[0.1, 0.1], &LmConfig::default());
        assert!(result.cost < 1e-12, "cost {} after {} iterations", result.cost, result.iterations);
        let (found, _) = evaluator.evaluate(&result.params);
        assert!(found.max_elementwise_distance(&target) < 1e-6);
    }

    #[test]
    fn lm_converges_from_multiple_starts() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[2.2, 0.4]);
        for start in [[0.0, 0.0], [1.0, -1.0], [-2.0, 2.0]] {
            let result = minimize(&mut evaluator, &target, &start, &LmConfig::default());
            assert!(result.cost < 1e-10, "start {start:?} ended at cost {}", result.cost);
        }
    }

    #[test]
    fn lm_respects_iteration_budget() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[2.2, 0.4]);
        let config = LmConfig { max_iterations: 1, ..LmConfig::default() };
        let result = minimize(&mut evaluator, &target, &[0.0, 0.0], &config);
        assert!(result.iterations <= 1);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn lm_validates_initial_guess() {
        let mut evaluator = ToyEvaluator;
        let (target, _) = evaluator.evaluate(&[0.1, 0.2]);
        minimize(&mut evaluator, &target, &[0.0], &LmConfig::default());
    }
}
