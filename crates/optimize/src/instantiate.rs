//! Numerical instantiation: driving the LM optimizer from one or many random starting
//! points to fit a parameterized circuit to a target unitary.
//!
//! This is the workload of Figs. 6 and 7 of the paper: single-start instantiation and
//! the more realistic multi-start scenario (8 starts, matching BQSKit's `-O3` default),
//! with early termination as soon as one start reaches the success threshold.
//!
//! Multi-start runs execute their starts **in parallel** (scoped threads, one TNVM per
//! worker, all sharing one [`ExpressionCache`]): each start's starting point is derived
//! from a deterministic `(seed, start index)` pair, and early termination is resolved
//! by the lowest successful start *index*, never by which thread finished first — so a
//! multi-start run returns the same parameters and infidelity as the serial loop, on
//! any machine. Synthesis frontiers hammer this path — see `qudit-synth`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::QuditCircuit;
use qudit_network::{compile_network, TensorNetwork, TnvmProgram};
use qudit_qvm::{CompileOptions, DiffMode, ExpressionCache};
use qudit_tensor::{Matrix, C64};
use qudit_tnvm::{BackendKind, KernelCounters, Tnvm};
use qudit_trace::TraceRegistry;

use crate::cost::hs_infidelity;
use crate::lm::{minimize, GradientEvaluator, LmConfig, LmResult};

/// The infidelity below which an instantiation is considered successful, matching the
/// convention used for synthesis sub-calls.
pub const SUCCESS_THRESHOLD: f64 = 1e-8;

/// Configuration for an instantiation run.
#[derive(Debug, Clone)]
pub struct InstantiateConfig {
    /// Number of random restarts (1 = single-start; the paper's multi-start uses 8).
    pub starts: usize,
    /// Infidelity threshold for declaring success (and short-circuiting restarts).
    pub success_threshold: f64,
    /// LM settings shared by every start. The `panel_columns` field is re-derived
    /// from [`Self::backend`] at run time — see [`Self::effective_lm`].
    pub lm: LmConfig,
    /// RNG seed for the random starting parameters. Each start derives its own
    /// generator from `(seed, start index)`, so results are schedule-independent.
    pub seed: u64,
    /// Worker-thread cap for multi-start runs: `0` uses the machine's available
    /// parallelism, `1` forces the serial path.
    pub threads: usize,
    /// Optional warm start: the first start begins from these values (tail-padded with
    /// near-zero randoms when the circuit has more parameters). Bottom-up synthesis
    /// passes the parent node's optimum here, since an extended circuit keeps its
    /// parent's parameter positions.
    pub warm_start: Option<Vec<f64>>,
    /// The TNVM execution tier every evaluator built for this run lowers through.
    /// Defaults to the process-wide tier (`OPENQUDIT_TNVM_BACKEND`, else scalar).
    pub backend: BackendKind,
    /// Observability sink. Disabled by default (zero overhead); when enabled, every
    /// instantiation records its deterministic counters (calls, starts, LM iterations,
    /// kernel dispatches) at its join point. Parallel drivers hand workers a disabled
    /// handle and record only the schedule-independent prefix of completed work.
    pub trace: TraceRegistry,
}

impl Default for InstantiateConfig {
    fn default() -> Self {
        InstantiateConfig {
            starts: 1,
            success_threshold: SUCCESS_THRESHOLD,
            lm: LmConfig::default(),
            seed: 0,
            threads: 0,
            warm_start: None,
            backend: BackendKind::default(),
            trace: TraceRegistry::disabled(),
        }
    }
}

impl InstantiateConfig {
    /// The paper's multi-start configuration (8 restarts).
    pub fn multi_start(seed: u64) -> Self {
        InstantiateConfig { starts: 8, seed, ..Default::default() }
    }

    /// The number of worker threads a multi-start run will actually use.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads).min(self.starts.max(1))
    }

    /// The LM settings actually passed to the optimizer: [`Self::lm`] with its
    /// `panel_columns` taken from the selected backend's target descriptor, so the
    /// optimizer's normal-equations assembly follows the execution tier (the scalar
    /// tier keeps the strictly serial reference loop; the blocked tier runs the
    /// bit-identical panel-packed assembly).
    pub fn effective_lm(&self) -> LmConfig {
        LmConfig {
            panel_columns: self.backend.instance().descriptor().panel_columns,
            ..self.lm.clone()
        }
    }
}

/// Resolves a requested worker-thread count: `0` means the machine's available
/// parallelism (with a fallback of 1). Shared policy for every parallel driver in the
/// workspace (multi-start instantiation, the synthesis frontier).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// The deterministic starting point for start `start_idx`: the warm start (when given)
/// for start 0, otherwise near-zero for start 0 and uniform over `(-π, π]` for the
/// rest. Every start seeds its own generator from `(config.seed, start_idx)`, so the
/// points do not depend on which thread evaluates which start.
fn start_point(n: usize, config: &InstantiateConfig, start_idx: usize) -> Vec<f64> {
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (start_idx as u64).wrapping_mul(0x9E3779B97F4A7C15));
    if start_idx == 0 {
        if let Some(warm) = &config.warm_start {
            return (0..n)
                .map(|k| warm.get(k).copied().unwrap_or_else(|| rng.gen_range(-0.1..0.1)))
                .collect();
        }
        // First start near zero (a common heuristic); subsequent starts are uniform.
        (0..n).map(|_| rng.gen_range(-0.1..0.1)).collect()
    } else {
        (0..n).map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)).collect()
    }
}

/// The outcome of an instantiation.
#[derive(Debug, Clone)]
pub struct InstantiationResult {
    /// Best parameters found across all starts.
    pub params: Vec<f64>,
    /// Hilbert–Schmidt infidelity at the best parameters.
    pub infidelity: f64,
    /// Whether the success threshold was reached.
    pub success: bool,
    /// Number of starts actually executed (early termination may use fewer).
    pub starts_used: usize,
    /// Total LM iterations summed over all starts.
    pub total_iterations: usize,
    /// Kernel-dispatch/flop/cache counters accumulated by the run's evaluators —
    /// evaluator construction plus the deterministic prefix of completed starts, so
    /// parallel and serial runs of the same configuration report identical counts
    /// (at the same worker-pool size; construction counts scale with the pool).
    pub kernels: KernelCounters,
}

/// Records a finished instantiation into `trace` (no-op on a disabled handle).
fn record_instantiation(trace: &TraceRegistry, result: &InstantiationResult) {
    if !trace.enabled() {
        return;
    }
    trace.incr("instantiate.calls");
    trace.add("instantiate.starts", result.starts_used as u64);
    trace.add("lm.iterations", result.total_iterations as u64);
    if result.success {
        trace.incr("instantiate.successes");
    }
    result.kernels.record_into(trace);
}

/// Runs (multi-start) instantiation of `evaluator` against `target`, serially.
///
/// This is the trait-object entry point shared with the baseline engine. The
/// TNVM-backed [`instantiate_circuit`] runs its starts in parallel instead (through
/// [`instantiate_parallel`]); both explore exactly the same deterministic per-start
/// starting points.
pub fn instantiate(
    evaluator: &mut dyn GradientEvaluator,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
) -> InstantiationResult {
    assert!(config.starts >= 1, "at least one start is required");
    let n = evaluator.num_params();
    let lm = config.effective_lm();
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut total_iterations = 0usize;
    let mut starts_used = 0usize;
    // Whatever the evaluator accumulated before this run (construction, a preceding
    // `load_program`) is attributed to this run — it is the work done on its behalf.
    let mut kernels = evaluator.take_kernel_counters();

    for start_idx in 0..config.starts {
        starts_used += 1;
        let x0 = start_point(n, config, start_idx);
        let LmResult { params, iterations, .. } = minimize(evaluator, target, &x0, &lm);
        total_iterations += iterations;
        let (unitary, _) = evaluator.evaluate(&params);
        let infidelity = hs_infidelity(target, &unitary);
        kernels.merge(&evaluator.take_kernel_counters());
        let better = best.as_ref().map(|(_, b)| infidelity < *b).unwrap_or(true);
        if better {
            best = Some((params, infidelity));
        }
        if infidelity < config.success_threshold {
            break;
        }
    }

    let (params, infidelity) = best.expect("at least one start ran");
    let result = InstantiationResult {
        params,
        success: infidelity < config.success_threshold,
        infidelity,
        starts_used,
        total_iterations,
        kernels,
    };
    record_instantiation(&config.trace, &result);
    result
}

/// One finished start: `(start index, params, infidelity, LM iterations, kernel work)`.
type CompletedStart = (usize, Vec<f64>, f64, usize, KernelCounters);

/// Runs multi-start instantiation with the starts distributed over scoped worker
/// threads. `make_evaluator` is called once per worker (inside the worker), so the
/// evaluator type needs neither `Send` nor `Sync`; per-start starting points are
/// derived deterministically from `(config.seed, start index)`.
///
/// Early termination is **schedule-independent**: when one or more starts reach the
/// success threshold, the result is computed over exactly the starts `0..=s`, where
/// `s` is the lowest-indexed successful start. Starts above `s` are neither issued
/// after `s` completes nor counted if thread timing let them finish first, so the
/// returned parameters, infidelity, and `starts_used` match what the serial
/// [`instantiate`] loop produces for the same configuration — regardless of the
/// worker-pool size or thread interleaving.
pub fn instantiate_parallel<E, F>(
    make_evaluator: F,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
) -> InstantiationResult
where
    E: GradientEvaluator,
    F: Fn() -> E + Sync,
{
    assert!(config.starts >= 1, "at least one start is required");
    let threads = config.effective_threads();
    if threads <= 1 || config.starts == 1 {
        let mut evaluator = make_evaluator();
        return instantiate(&mut evaluator, target, config);
    }

    let next_start = AtomicUsize::new(0);
    // Lowest start index that reached the success threshold so far. Issuance is
    // monotonic (fetch_add hands out 0, 1, 2, …) and this value only decreases, so
    // every start below the final minimum is guaranteed to have been evaluated.
    let min_success = AtomicUsize::new(usize::MAX);
    let completed: Mutex<Vec<CompletedStart>> = Mutex::new(Vec::new());
    // Construction work is captured per worker *before* any start is claimed: every
    // worker constructs exactly one evaluator, so the sum over all `threads` workers
    // is deterministic at a fixed pool size even though the set of completed starts
    // past the early-stop cutoff is not.
    let construction: Mutex<KernelCounters> = Mutex::new(KernelCounters::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut evaluator = make_evaluator();
                construction
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(&evaluator.take_kernel_counters());
                let n = evaluator.num_params();
                let lm = config.effective_lm();
                loop {
                    // detlint: allow(thread-accumulation) — work-stealing ticket only;
                    // results are re-sorted by index at the deterministic join
                    let start_idx = next_start.fetch_add(1, Ordering::Relaxed);
                    if start_idx >= config.starts || start_idx > min_success.load(Ordering::Relaxed)
                    {
                        break;
                    }
                    let x0 = start_point(n, config, start_idx);
                    let LmResult { params, iterations, .. } =
                        minimize(&mut evaluator, target, &x0, &lm);
                    let (unitary, _) = evaluator.evaluate(&params);
                    let infidelity = hs_infidelity(target, &unitary);
                    let kernels = evaluator.take_kernel_counters();
                    if infidelity < config.success_threshold {
                        // detlint: allow(thread-accumulation) — min is commutative and
                        // every index below the final value is still evaluated
                        min_success.fetch_min(start_idx, Ordering::Relaxed);
                    }
                    completed
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((start_idx, params, infidelity, iterations, kernels));
                }
            });
        }
    });

    let mut runs = completed.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Keep exactly the deterministic prefix: starts past the winning index may or may
    // not have completed depending on thread timing, so they must not influence the
    // result (neither its parameters nor its counters).
    let cutoff = min_success.load(Ordering::Relaxed);
    runs.retain(|r| r.0 <= cutoff);
    // Deterministic tie-breaking: earlier start indices win among equal infidelities.
    runs.sort_by_key(|r| r.0);
    let starts_used = runs.len();
    let total_iterations = runs.iter().map(|r| r.3).sum();
    let mut kernels = construction.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    for r in &runs {
        kernels.merge(&r.4);
    }
    let (_, params, infidelity, _, _) =
        runs.into_iter().min_by(|a, b| a.2.total_cmp(&b.2)).expect("at least one start ran");
    let result = InstantiationResult {
        params,
        success: infidelity < config.success_threshold,
        infidelity,
        starts_used,
        total_iterations,
        kernels,
    };
    record_instantiation(&config.trace, &result);
    result
}

/// A [`GradientEvaluator`] backed by the TNVM — the "OpenQudit side" of the evaluation.
#[derive(Debug)]
pub struct TnvmEvaluator {
    vm: Tnvm<f64>,
    num_params: usize,
    dim: usize,
}

impl TnvmEvaluator {
    /// Compiles `circuit` ahead of time and initializes a gradient-mode TNVM using the
    /// given expression cache and the process-default execution tier.
    pub fn new(circuit: &QuditCircuit, cache: &ExpressionCache) -> Self {
        TnvmEvaluator::new_with_backend(circuit, cache, BackendKind::default())
    }

    /// [`TnvmEvaluator::new`] with an explicit TNVM execution tier.
    pub fn new_with_backend(
        circuit: &QuditCircuit,
        cache: &ExpressionCache,
        backend: BackendKind,
    ) -> Self {
        let network = TensorNetwork::from_circuit(circuit);
        let program = compile_network(&network);
        TnvmEvaluator::from_program_with_backend(&program, cache, backend)
    }

    /// Initializes a gradient-mode TNVM directly from already-compiled bytecode (using
    /// the process-default execution tier). The parallel multi-start driver uses this
    /// to share one AOT compilation across all worker threads.
    pub fn from_program(program: &TnvmProgram, cache: &ExpressionCache) -> Self {
        TnvmEvaluator::from_program_with_backend(program, cache, BackendKind::default())
    }

    /// [`TnvmEvaluator::from_program`] with an explicit TNVM execution tier.
    pub fn from_program_with_backend(
        program: &TnvmProgram,
        cache: &ExpressionCache,
        backend: BackendKind,
    ) -> Self {
        let vm = Tnvm::with_backend(program, DiffMode::Gradient, cache, backend);
        TnvmEvaluator { num_params: program.num_params, dim: program.dim(), vm }
    }

    /// The execution tier the underlying TNVM lowers through.
    pub fn backend(&self) -> BackendKind {
        self.vm.backend()
    }

    /// Re-targets the evaluator at new bytecode in place, reusing the TNVM's arena
    /// allocations — the recompile-on-expansion path synthesis workers use when moving
    /// from one candidate circuit to the next.
    pub fn load_program(&mut self, program: &TnvmProgram, cache: &ExpressionCache) {
        self.vm.load(program, cache);
        self.num_params = program.num_params;
        self.dim = program.dim();
    }

    /// Bytes of numerical storage held by the underlying TNVM.
    pub fn memory_bytes(&self) -> usize {
        self.vm.memory_bytes()
    }
}

impl GradientEvaluator for TnvmEvaluator {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>) {
        let result = self.vm.evaluate(params);
        (result.unitary, result.gradient)
    }

    fn take_kernel_counters(&mut self) -> qudit_tnvm::KernelCounters {
        self.vm.take_counters()
    }
}

/// Instantiates a circuit against a target unitary using the TNVM pipeline (AOT compile,
/// TNVM init, multi-start LM). The expression cache is shared state, so repeated calls
/// with the same gate set skip recompilation. Multi-start runs distribute their starts
/// over worker threads (see [`InstantiateConfig::effective_threads`]); the circuit is
/// AOT-compiled once and every worker instantiates its own TNVM from the shared
/// bytecode.
pub fn instantiate_circuit(
    circuit: &QuditCircuit,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
    cache: &ExpressionCache,
) -> InstantiationResult {
    if config.effective_threads() <= 1 {
        let mut evaluator = TnvmEvaluator::new_with_backend(circuit, cache, config.backend);
        return instantiate(&mut evaluator, target, config);
    }
    let network = TensorNetwork::from_circuit(circuit);
    let program = compile_network(&network);
    // Warm the cache serially first: `get_or_compile` compiles outside its lock, so a
    // cold cache hit by N workers at once would compile the same expression N times.
    // The prewarm's lookup outcomes are deterministic (serial, fixed expression list),
    // so they are counted directly.
    let options = CompileOptions::with_gradient();
    let mut prewarm = KernelCounters::default();
    for expr in &program.exprs {
        let (_, hit) = cache.get_or_compile_traced(expr, &options);
        if hit {
            prewarm.cache_hits += 1;
        } else {
            prewarm.cache_misses += 1;
        }
    }
    prewarm.record_into(&config.trace);
    instantiate_parallel(
        || TnvmEvaluator::from_program_with_backend(&program, cache, config.backend),
        target,
        config,
    )
}

/// Projects a parent parameter vector onto a smaller (or re-indexed) circuit through a
/// subset mapping: `mapping[k]` is the parent index supplying the child's `k`-th
/// parameter. The mapping is exactly what [`qudit_circuit::QuditCircuit::delete_op`]
/// returns, so a gate-deletion pass can warm-start the shrunken circuit from the
/// surviving optimum.
///
/// # Panics
///
/// Panics if any mapping entry is out of range for `parent`.
pub fn warm_start_from_mapping(parent: &[f64], mapping: &[usize]) -> Vec<f64> {
    mapping
        .iter()
        .map(|&i| {
            assert!(
                i < parent.len(),
                "mapping entry {i} out of range for {} parent parameter(s)",
                parent.len()
            );
            parent[i]
        })
        .collect()
}

/// [`instantiate_circuit`] warm-started from a *parent* circuit's optimum through a
/// parameter subset mapping — the re-instantiation entry point of the post-synthesis
/// refinement pass. The first start begins at the projected parent parameters
/// (`mapping[k]` = parent index of child parameter `k`); the remaining starts explore
/// the usual deterministic random points, so a deletion that perturbs the optimum out
/// of the warm basin can still be recovered.
pub fn instantiate_circuit_mapped(
    circuit: &QuditCircuit,
    target: &Matrix<f64>,
    parent_params: &[f64],
    mapping: &[usize],
    config: &InstantiateConfig,
    cache: &ExpressionCache,
) -> InstantiationResult {
    let warm = warm_start_from_mapping(parent_params, mapping);
    let config = InstantiateConfig { warm_start: Some(warm), ..config.clone() };
    instantiate_circuit(circuit, target, &config, cache)
}

/// Samples a Haar-random unitary of the given dimension (Gaussian matrix followed by
/// Gram–Schmidt orthonormalization with phase fixing).
pub fn haar_random_unitary(dim: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = || {
        // Box–Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let mut columns: Vec<Vec<C64>> =
        (0..dim).map(|_| (0..dim).map(|_| C64::new(gauss(), gauss())).collect()).collect();
    // Modified Gram–Schmidt.
    for k in 0..dim {
        for j in 0..k {
            let proj: C64 =
                columns[j].iter().zip(columns[k].iter()).map(|(a, b)| a.conj() * *b).sum();
            let col_j = columns[j].clone();
            for (vk, vj) in columns[k].iter_mut().zip(col_j.iter()) {
                *vk -= *vj * proj;
            }
        }
        let norm: f64 = columns[k].iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        for v in columns[k].iter_mut() {
            *v = v.scale(1.0 / norm);
        }
    }
    Matrix::from_fn(dim, dim, |r, c| columns[c][r])
}

/// Builds the target for a "reachable" benchmark: the circuit's own unitary at random
/// parameters, guaranteeing that a perfect solution exists.
pub fn reachable_target(circuit: &QuditCircuit, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params: Vec<f64> = (0..circuit.num_params())
        .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
        .collect();
    circuit.unitary::<f64>(&params).expect("circuit evaluates at any parameter point")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::builders;

    #[test]
    fn haar_random_unitaries_are_unitary_and_distinct() {
        for dim in [2usize, 4, 8, 9] {
            let u = haar_random_unitary(dim, 42);
            assert!(u.is_unitary(1e-10), "dim {dim}");
        }
        let a = haar_random_unitary(4, 1);
        let b = haar_random_unitary(4, 2);
        assert!(a.max_elementwise_distance(&b) > 1e-3);
    }

    #[test]
    fn single_start_instantiation_hits_reachable_target() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 7);
        let cache = ExpressionCache::new();
        let config = InstantiateConfig { starts: 4, seed: 3, ..Default::default() };
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        assert!(
            result.infidelity < 1e-6,
            "infidelity {} after {} starts",
            result.infidelity,
            result.starts_used
        );
    }

    #[test]
    fn multi_start_short_circuits_after_success() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 11);
        let cache = ExpressionCache::new();
        let config = InstantiateConfig::multi_start(5);
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        if result.success {
            assert!(result.starts_used <= 8);
        }
        assert!(result.total_iterations > 0);
    }

    #[test]
    fn cnot_target_is_reached_with_identity_locals() {
        // The ladder is (U3⊗U3)·CNOT·(U3⊗U3); setting every U3 to the identity makes the
        // circuit exactly a CNOT, so a CNOT target must instantiate to ~zero infidelity.
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = qudit_circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let cache = ExpressionCache::new();
        let config = InstantiateConfig { starts: 4, seed: 9, ..Default::default() };
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        assert!(result.infidelity < 1e-6, "infidelity {}", result.infidelity);
    }

    #[test]
    fn unreachable_target_reports_failure_honestly() {
        // A circuit with a single parameterized RZ cannot match a Haar-random 2-qubit
        // unitary; instantiation must report failure rather than a bogus success.
        let mut circuit = qudit_circuit::QuditCircuit::qubits(2);
        let rz = circuit.cache_operation(qudit_circuit::gates::rz()).unwrap();
        circuit.append_ref(rz, vec![0]).unwrap();
        let target = haar_random_unitary(4, 123);
        let cache = ExpressionCache::new();
        let result = instantiate_circuit(&circuit, &target, &InstantiateConfig::default(), &cache);
        assert!(!result.success);
        assert!(result.infidelity > 1e-3);
    }

    #[test]
    fn config_defaults() {
        let c = InstantiateConfig::default();
        assert_eq!(c.starts, 1);
        assert_eq!(c.threads, 0);
        assert!(c.warm_start.is_none());
        let m = InstantiateConfig::multi_start(0);
        assert_eq!(m.starts, 8);
        assert_eq!(m.success_threshold, SUCCESS_THRESHOLD);
        assert!(m.effective_threads() >= 1);
        assert!(m.effective_threads() <= 8);
        let serial = InstantiateConfig { threads: 1, ..Default::default() };
        assert_eq!(serial.effective_threads(), 1);
    }

    #[test]
    fn parallel_and_serial_explore_identical_start_points() {
        let config = InstantiateConfig { starts: 5, seed: 17, ..Default::default() };
        for idx in 0..5 {
            let a = start_point(7, &config, idx);
            let b = start_point(7, &config, idx);
            assert_eq!(a, b, "start {idx} must be schedule-independent");
            assert_eq!(a.len(), 7);
        }
        // Start 0 is near zero, later starts are uniform in (-π, π].
        assert!(start_point(7, &config, 0).iter().all(|v| v.abs() < 0.1));
        assert!(start_point(7, &config, 1).iter().any(|v| v.abs() > 0.1));
    }

    #[test]
    fn parallel_multi_start_matches_serial_quality() {
        let circuit = builders::pqc_qubit_ladder(3, 3).unwrap();
        let target = reachable_target(&circuit, 31);
        let cache = ExpressionCache::new();
        let parallel_cfg = InstantiateConfig { starts: 4, seed: 5, ..Default::default() };
        let result = instantiate_circuit(&circuit, &target, &parallel_cfg, &cache);
        assert!(result.infidelity < 1e-6, "parallel infidelity {}", result.infidelity);
        assert!(result.starts_used >= 1 && result.starts_used <= 4);
        assert!(result.total_iterations > 0);
    }

    #[test]
    fn parallel_early_stop_matches_serial_exactly() {
        // The schedule-independence guarantee: parallel multi-start with early
        // termination must return bit-identical parameters and infidelity to the
        // serial loop, because both compute over the starts 0..=first-success.
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 21);
        let cache = ExpressionCache::new();
        let parallel_cfg = InstantiateConfig { starts: 6, seed: 13, ..Default::default() };
        let serial_cfg = InstantiateConfig { threads: 1, ..parallel_cfg.clone() };
        let parallel = instantiate_circuit(&circuit, &target, &parallel_cfg, &cache);
        let serial = instantiate_circuit(&circuit, &target, &serial_cfg, &cache);
        assert_eq!(parallel.params, serial.params);
        assert_eq!(parallel.infidelity.to_bits(), serial.infidelity.to_bits());
        assert_eq!(parallel.starts_used, serial.starts_used);
        assert_eq!(parallel.total_iterations, serial.total_iterations);
        // Evaluation counts come only from the retained start prefix (construction
        // performs no `evaluate`), so they agree across schedules too.
        assert_eq!(parallel.kernels.evaluations, serial.kernels.evaluations);
    }

    #[test]
    fn instantiation_records_deterministic_trace_counters() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 7);
        let run = |seed| {
            let cache = ExpressionCache::new();
            let trace = TraceRegistry::new();
            let config =
                InstantiateConfig { starts: 4, seed, trace: trace.clone(), ..Default::default() };
            let result = instantiate_circuit(&circuit, &target, &config, &cache);
            (result, trace.counters_json())
        };
        let (r1, s1) = run(3);
        let (r2, s2) = run(3);
        assert_eq!(s1, s2, "same-seed counter snapshots must be byte-identical");
        assert!(s1.contains("\"instantiate.calls\": 1"), "snapshot: {s1}");
        assert!(s1.contains("lm.iterations"), "snapshot: {s1}");
        assert!(s1.contains("cache.misses"), "cold cache must report misses: {s1}");
        assert_eq!(r1.total_iterations, r2.total_iterations);
        assert!(r1.kernels.evaluations > 0, "evaluator work must be attributed");
        let (_, other_seed) = run(4);
        assert_ne!(s1, other_seed, "different seeds should do different work");
    }

    #[test]
    fn mapped_warm_start_projects_parent_parameters() {
        assert_eq!(warm_start_from_mapping(&[0.1, 0.2, 0.3, 0.4], &[0, 3]), vec![0.1, 0.4]);

        // Deleting a block from an optimized template and re-instantiating through
        // the deletion's parameter mapping recovers the target immediately: the
        // surviving parameters already solve it.
        let parent = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
        let target = reachable_target(&parent, 3);
        let cache = ExpressionCache::new();
        let parent_result = instantiate_circuit(
            &parent,
            &target,
            &InstantiateConfig { starts: 4, seed: 1, ..Default::default() },
            &cache,
        );
        assert!(parent_result.infidelity < 1e-8);

        // Pad the template with one extra block, warm-starting the padded circuit so
        // its extra block lands near identity, then delete it and re-instantiate.
        let mut padded = builders::pqc_template(&[2, 2], &[(0, 1), (0, 1)]).unwrap();
        let padded_result = instantiate_circuit_mapped(
            &padded,
            &target,
            &parent_result.params,
            &(0..parent.num_params()).collect::<Vec<_>>(),
            &InstantiateConfig { starts: 4, seed: 2, ..Default::default() },
            &cache,
        );
        assert!(padded_result.infidelity < 1e-8);
        let mapping = qudit_circuit::builders::delete_pqc_block(&mut padded, 1).unwrap();
        let restored = instantiate_circuit_mapped(
            &padded,
            &target,
            &padded_result.params,
            &mapping,
            &InstantiateConfig { starts: 4, seed: 3, ..Default::default() },
            &cache,
        );
        assert!(restored.infidelity < 1e-8, "restored infidelity {}", restored.infidelity);
    }

    #[test]
    fn warm_start_reuses_parent_parameters() {
        // Optimize the 1-layer template, extend it by one block, and warm-start the
        // extended instantiation from the parent's optimum. The extension appends its
        // gates' parameters at the tail, so the parent optimum is a meaningful prefix
        // of the child's parameter vector — a strong starting region for LM (though
        // not an exact embedding: the appended block contains a constant entangler).
        let parent = builders::pqc_template(&[2, 2], &[(0, 1)]).unwrap();
        let target = reachable_target(&parent, 3);
        let cache = ExpressionCache::new();
        let parent_result = instantiate_circuit(
            &parent,
            &target,
            &InstantiateConfig { starts: 4, seed: 1, ..Default::default() },
            &cache,
        );
        assert!(parent_result.infidelity < 1e-8);

        let child = builders::pqc_template(&[2, 2], &[(0, 1), (0, 1)]).unwrap();
        let warm_cfg = InstantiateConfig {
            starts: 4,
            warm_start: Some(parent_result.params.clone()),
            seed: 2,
            ..Default::default()
        };
        let child_result = instantiate_circuit(&child, &target, &warm_cfg, &cache);
        assert!(
            child_result.infidelity < 1e-8,
            "warm-started child infidelity {}",
            child_result.infidelity
        );
    }
}
