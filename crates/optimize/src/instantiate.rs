//! Numerical instantiation: driving the LM optimizer from one or many random starting
//! points to fit a parameterized circuit to a target unitary.
//!
//! This is the workload of Figs. 6 and 7 of the paper: single-start instantiation and
//! the more realistic multi-start scenario (8 starts, matching BQSKit's `-O3` default),
//! with early termination as soon as one start reaches the success threshold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::QuditCircuit;
use qudit_network::{compile_network, TensorNetwork};
use qudit_qvm::{DiffMode, ExpressionCache};
use qudit_tensor::{C64, Matrix};
use qudit_tnvm::Tnvm;

use crate::cost::hs_infidelity;
use crate::lm::{minimize, GradientEvaluator, LmConfig, LmResult};

/// The infidelity below which an instantiation is considered successful, matching the
/// convention used for synthesis sub-calls.
pub const SUCCESS_THRESHOLD: f64 = 1e-8;

/// Configuration for an instantiation run.
#[derive(Debug, Clone)]
pub struct InstantiateConfig {
    /// Number of random restarts (1 = single-start; the paper's multi-start uses 8).
    pub starts: usize,
    /// Infidelity threshold for declaring success (and short-circuiting restarts).
    pub success_threshold: f64,
    /// LM settings shared by every start.
    pub lm: LmConfig,
    /// RNG seed for the random starting parameters.
    pub seed: u64,
}

impl Default for InstantiateConfig {
    fn default() -> Self {
        InstantiateConfig {
            starts: 1,
            success_threshold: SUCCESS_THRESHOLD,
            lm: LmConfig::default(),
            seed: 0,
        }
    }
}

impl InstantiateConfig {
    /// The paper's multi-start configuration (8 restarts).
    pub fn multi_start(seed: u64) -> Self {
        InstantiateConfig { starts: 8, seed, ..Default::default() }
    }
}

/// The outcome of an instantiation.
#[derive(Debug, Clone)]
pub struct InstantiationResult {
    /// Best parameters found across all starts.
    pub params: Vec<f64>,
    /// Hilbert–Schmidt infidelity at the best parameters.
    pub infidelity: f64,
    /// Whether the success threshold was reached.
    pub success: bool,
    /// Number of starts actually executed (early termination may use fewer).
    pub starts_used: usize,
    /// Total LM iterations summed over all starts.
    pub total_iterations: usize,
}

/// Runs (multi-start) instantiation of `evaluator` against `target`.
pub fn instantiate(
    evaluator: &mut dyn GradientEvaluator,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
) -> InstantiationResult {
    assert!(config.starts >= 1, "at least one start is required");
    let n = evaluator.num_params();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut total_iterations = 0usize;
    let mut starts_used = 0usize;

    for start_idx in 0..config.starts {
        starts_used += 1;
        let x0: Vec<f64> = if start_idx == 0 && n > 0 {
            // First start near zero (a common heuristic); subsequent starts are uniform.
            (0..n).map(|_| rng.gen_range(-0.1..0.1)).collect()
        } else {
            (0..n).map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)).collect()
        };
        let LmResult { params, iterations, .. } = minimize(evaluator, target, &x0, &config.lm);
        total_iterations += iterations;
        let (unitary, _) = evaluator.evaluate(&params);
        let infidelity = hs_infidelity(target, &unitary);
        let better = best.as_ref().map(|(_, b)| infidelity < *b).unwrap_or(true);
        if better {
            best = Some((params, infidelity));
        }
        if infidelity < config.success_threshold {
            break;
        }
    }

    let (params, infidelity) = best.expect("at least one start ran");
    InstantiationResult {
        params,
        success: infidelity < config.success_threshold,
        infidelity,
        starts_used,
        total_iterations,
    }
}

/// A [`GradientEvaluator`] backed by the TNVM — the "OpenQudit side" of the evaluation.
#[derive(Debug)]
pub struct TnvmEvaluator {
    vm: Tnvm<f64>,
    num_params: usize,
    dim: usize,
}

impl TnvmEvaluator {
    /// Compiles `circuit` ahead of time and initializes a gradient-mode TNVM using the
    /// given expression cache.
    pub fn new(circuit: &QuditCircuit, cache: &ExpressionCache) -> Self {
        let network = TensorNetwork::from_circuit(circuit);
        let program = compile_network(&network);
        let vm = Tnvm::new(&program, DiffMode::Gradient, cache);
        TnvmEvaluator { num_params: circuit.num_params(), dim: circuit.dim(), vm }
    }

    /// Bytes of numerical storage held by the underlying TNVM.
    pub fn memory_bytes(&self) -> usize {
        self.vm.memory_bytes()
    }
}

impl GradientEvaluator for TnvmEvaluator {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate(&mut self, params: &[f64]) -> (Matrix<f64>, Vec<Matrix<f64>>) {
        let result = self.vm.evaluate(params);
        (result.unitary, result.gradient)
    }
}

/// Instantiates a circuit against a target unitary using the TNVM pipeline (AOT compile,
/// TNVM init, multi-start LM). The expression cache is shared state, so repeated calls
/// with the same gate set skip recompilation.
pub fn instantiate_circuit(
    circuit: &QuditCircuit,
    target: &Matrix<f64>,
    config: &InstantiateConfig,
    cache: &ExpressionCache,
) -> InstantiationResult {
    let mut evaluator = TnvmEvaluator::new(circuit, cache);
    instantiate(&mut evaluator, target, config)
}

/// Samples a Haar-random unitary of the given dimension (Gaussian matrix followed by
/// Gram–Schmidt orthonormalization with phase fixing).
pub fn haar_random_unitary(dim: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = || {
        // Box–Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let mut columns: Vec<Vec<C64>> = (0..dim)
        .map(|_| (0..dim).map(|_| C64::new(gauss(), gauss())).collect())
        .collect();
    // Modified Gram–Schmidt.
    for k in 0..dim {
        for j in 0..k {
            let proj: C64 = columns[j]
                .iter()
                .zip(columns[k].iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            let col_j = columns[j].clone();
            for (vk, vj) in columns[k].iter_mut().zip(col_j.iter()) {
                *vk = *vk - *vj * proj;
            }
        }
        let norm: f64 = columns[k].iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        for v in columns[k].iter_mut() {
            *v = v.scale(1.0 / norm);
        }
    }
    Matrix::from_fn(dim, dim, |r, c| columns[c][r])
}

/// Builds the target for a "reachable" benchmark: the circuit's own unitary at random
/// parameters, guaranteeing that a perfect solution exists.
pub fn reachable_target(circuit: &QuditCircuit, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params: Vec<f64> = (0..circuit.num_params())
        .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
        .collect();
    circuit.unitary::<f64>(&params).expect("circuit evaluates at any parameter point")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::builders;

    #[test]
    fn haar_random_unitaries_are_unitary_and_distinct() {
        for dim in [2usize, 4, 8, 9] {
            let u = haar_random_unitary(dim, 42);
            assert!(u.is_unitary(1e-10), "dim {dim}");
        }
        let a = haar_random_unitary(4, 1);
        let b = haar_random_unitary(4, 2);
        assert!(a.max_elementwise_distance(&b) > 1e-3);
    }

    #[test]
    fn single_start_instantiation_hits_reachable_target() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 7);
        let cache = ExpressionCache::new();
        let config = InstantiateConfig { starts: 4, seed: 3, ..Default::default() };
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        assert!(
            result.infidelity < 1e-6,
            "infidelity {} after {} starts",
            result.infidelity,
            result.starts_used
        );
    }

    #[test]
    fn multi_start_short_circuits_after_success() {
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = reachable_target(&circuit, 11);
        let cache = ExpressionCache::new();
        let config = InstantiateConfig::multi_start(5);
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        if result.success {
            assert!(result.starts_used <= 8);
        }
        assert!(result.total_iterations > 0);
    }

    #[test]
    fn cnot_target_is_reached_with_identity_locals() {
        // The ladder is (U3⊗U3)·CNOT·(U3⊗U3); setting every U3 to the identity makes the
        // circuit exactly a CNOT, so a CNOT target must instantiate to ~zero infidelity.
        let circuit = builders::pqc_qubit_ladder(2, 1).unwrap();
        let target = qudit_circuit::gates::cnot().to_matrix::<f64>(&[]).unwrap();
        let cache = ExpressionCache::new();
        let config = InstantiateConfig { starts: 4, seed: 9, ..Default::default() };
        let result = instantiate_circuit(&circuit, &target, &config, &cache);
        assert!(result.infidelity < 1e-6, "infidelity {}", result.infidelity);
    }

    #[test]
    fn unreachable_target_reports_failure_honestly() {
        // A circuit with a single parameterized RZ cannot match a Haar-random 2-qubit
        // unitary; instantiation must report failure rather than a bogus success.
        let mut circuit = qudit_circuit::QuditCircuit::qubits(2);
        let rz = circuit.cache_operation(qudit_circuit::gates::rz()).unwrap();
        circuit.append_ref(rz, vec![0]).unwrap();
        let target = haar_random_unitary(4, 123);
        let cache = ExpressionCache::new();
        let result =
            instantiate_circuit(&circuit, &target, &InstantiateConfig::default(), &cache);
        assert!(!result.success);
        assert!(result.infidelity > 1e-3);
    }

    #[test]
    fn config_defaults() {
        let c = InstantiateConfig::default();
        assert_eq!(c.starts, 1);
        let m = InstantiateConfig::multi_start(0);
        assert_eq!(m.starts, 8);
        assert_eq!(m.success_threshold, SUCCESS_THRESHOLD);
    }
}
