//! # qudit-optimize
//!
//! Numerical instantiation for the OpenQudit reproduction: the Hilbert–Schmidt cost
//! function of Eq. (1), a from-scratch (deliberately naive, per Sec. VI-A of the paper)
//! Levenberg–Marquardt optimizer, single- and multi-start instantiation drivers with
//! early termination, Haar-random target sampling, and the TNVM-backed
//! [`GradientEvaluator`] adapter.
//!
//! ```
//! use qudit_circuit::builders;
//! use qudit_optimize::{instantiate_circuit, reachable_target, InstantiateConfig};
//! use qudit_qvm::ExpressionCache;
//!
//! let circuit = builders::pqc_qubit_ladder(2, 1)?;
//! let target = reachable_target(&circuit, 7);
//! let cache = ExpressionCache::new();
//! let config = InstantiateConfig { starts: 4, ..Default::default() };
//! let result = instantiate_circuit(&circuit, &target, &config, &cache);
//! assert!(result.infidelity < 1e-4);
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

pub mod cost;
pub mod instantiate;
pub mod lm;

pub use cost::{hs_infidelity, jacobian_column_into, residual_len, residuals_into, sum_of_squares};
pub use instantiate::{
    haar_random_unitary, instantiate, instantiate_circuit, instantiate_circuit_mapped,
    instantiate_parallel, reachable_target, resolve_threads, warm_start_from_mapping,
    InstantiateConfig, InstantiationResult, TnvmEvaluator, SUCCESS_THRESHOLD,
};
pub use lm::{minimize, solve_linear_system, GradientEvaluator, LmConfig, LmResult};
// Re-exported so higher layers (qudit-synth, qudit-compile) can thread backend
// selection without depending on qudit-tnvm directly.
pub use qudit_tnvm::BackendKind;
