//! Compilation of symbolic unitary expressions into flat register programs.
//!
//! This is the "expression JIT pipeline" of Fig. 3 in the paper: the symbolic matrix (and
//! its automatically-derived gradient) is simplified with the e-graph pass and then
//! emitted as a register program with global common-subexpression elimination across all
//! matrix elements and all partial derivatives. Constants are folded into the program,
//! and each distinct subexpression is computed exactly once per call.

use std::collections::HashMap;

use qudit_egraph::simplify::{simplify_batch_with, SimplifyConfig};
use qudit_qgl::{ComplexExpr, Expr, UnitaryExpression};
use qudit_tensor::{Complex, Float, Matrix};

use crate::program::{ExprProgram, Instr, OutputSlot, Reg};

/// Which derivative artifacts to compile alongside the unitary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffMode {
    /// Only the unitary itself.
    #[default]
    None,
    /// The unitary and its gradient (one matrix per parameter).
    Gradient,
}

/// Options controlling expression compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Differentiation artifacts to generate.
    pub diff_mode: DiffMode,
    /// Whether to run the e-graph simplification pass before emission (the ablation
    /// benchmark disables it to quantify its contribution).
    pub skip_simplification: bool,
}

impl CompileOptions {
    /// Options for compiling the unitary together with its gradient.
    pub fn with_gradient() -> Self {
        CompileOptions { diff_mode: DiffMode::Gradient, ..Default::default() }
    }
}

/// A compiled QGL expression: the unitary program and, optionally, a combined
/// unitary+gradient program.
///
/// The gradient program recomputes the unitary as well; in the TNVM's forward-mode
/// sweep both are always needed together, and sharing the program lets every common
/// subexpression between U and ∂U be computed once.
#[derive(Debug, Clone)]
pub struct CompiledExpression {
    name: String,
    params: Vec<String>,
    dim: usize,
    radices: Vec<usize>,
    unitary: ExprProgram,
    gradient: Option<ExprProgram>,
}

impl CompiledExpression {
    /// Compiles a unitary expression with the given options.
    pub fn compile(expr: &UnitaryExpression, options: &CompileOptions) -> Self {
        let dim = expr.dim();
        let params = expr.params().to_vec();

        // Collect the component expressions: unitary first, then each ∂/∂θ in parameter
        // order, all flattened row-major with (re, im) interleaved.
        let mut components: Vec<Expr> = Vec::with_capacity(2 * dim * dim);
        let push_matrix = |mat: &[Vec<ComplexExpr>], components: &mut Vec<Expr>| {
            for row in mat {
                for el in row {
                    components.push(el.re.clone());
                    components.push(el.im.clone());
                }
            }
        };
        push_matrix(expr.elements(), &mut components);
        let unitary_len = components.len();
        if options.diff_mode == DiffMode::Gradient {
            for grad in expr.gradient() {
                push_matrix(&grad, &mut components);
            }
        }

        // Symbolic simplification over the whole batch (so CSE acts across U and ∂U).
        let simplified = if options.skip_simplification {
            components
        } else {
            simplify_batch_with(&components, &SimplifyConfig::default()).exprs
        };

        let unitary_exprs = &simplified[..unitary_len];
        let unitary = emit_program(unitary_exprs, &params);
        let gradient = if options.diff_mode == DiffMode::Gradient {
            Some(emit_program(&simplified, &params))
        } else {
            None
        };

        CompiledExpression {
            name: expr.name().to_string(),
            params,
            dim,
            radices: expr.radices().to_vec(),
            unitary,
            gradient,
        }
    }

    /// The gate name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The qudit radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The parameter names in order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The compiled unitary program.
    pub fn unitary_program(&self) -> &ExprProgram {
        &self.unitary
    }

    /// The compiled unitary+gradient program, if gradients were requested.
    pub fn gradient_program(&self) -> Option<&ExprProgram> {
        self.gradient.as_ref()
    }

    /// The scratch-register requirement across all compiled programs.
    pub fn scratch_len(&self) -> usize {
        self.unitary.num_regs.max(self.gradient.as_ref().map(|p| p.num_regs).unwrap_or(0))
    }

    /// Evaluates the unitary into a freshly allocated matrix (convenience/test path; the
    /// TNVM drives [`ExprProgram::run`] against its arena directly).
    pub fn evaluate_unitary<T: Float>(&self, params: &[T]) -> Matrix<T> {
        let out = self.unitary.run_alloc(params);
        Matrix::from_vec(self.dim, self.dim, out).expect("compiled output has matrix shape")
    }

    /// Evaluates the unitary and its gradient. Returns `(U, [∂U/∂θ₀, …])`.
    ///
    /// # Panics
    ///
    /// Panics if the expression was compiled without gradients.
    pub fn evaluate_with_gradient<T: Float>(&self, params: &[T]) -> (Matrix<T>, Vec<Matrix<T>>) {
        let program =
            self.gradient.as_ref().expect("expression was compiled without gradient support");
        let out = program.run_alloc(params);
        let n = self.dim * self.dim;
        let unitary = Matrix::from_vec(self.dim, self.dim, out[..n].to_vec())
            .expect("compiled output has matrix shape");
        let grads = (0..self.params.len())
            .map(|k| {
                Matrix::from_vec(self.dim, self.dim, out[(k + 1) * n..(k + 2) * n].to_vec())
                    .expect("compiled output has matrix shape")
            })
            .collect();
        (unitary, grads)
    }
}

/// Emits a register program computing `exprs` (interpreted as interleaved re/im pairs)
/// with global CSE.
fn emit_program(exprs: &[Expr], params: &[String]) -> ExprProgram {
    let mut emitter = Emitter { params, instrs: Vec::new(), memo: HashMap::new(), next_reg: 0 };
    let regs: Vec<Reg> = exprs.iter().map(|e| emitter.emit(e)).collect();
    let outputs =
        regs.chunks_exact(2).map(|pair| OutputSlot { re: pair[0], im: pair[1] }).collect();
    ExprProgram {
        instrs: emitter.instrs,
        num_regs: emitter.next_reg as usize,
        num_params: params.len(),
        outputs,
    }
}

struct Emitter<'a> {
    params: &'a [String],
    instrs: Vec<Instr>,
    memo: HashMap<Expr, Reg>,
    next_reg: Reg,
}

impl<'a> Emitter<'a> {
    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, expr: &Expr) -> Reg {
        if let Some(&r) = self.memo.get(expr) {
            return r;
        }
        let reg = match expr {
            Expr::Const(c) => {
                let dst = self.fresh();
                self.instrs.push(Instr::LoadConst { dst, value: *c });
                dst
            }
            Expr::Pi => {
                let dst = self.fresh();
                self.instrs.push(Instr::LoadConst { dst, value: std::f64::consts::PI });
                dst
            }
            Expr::Var(name) => {
                let index = self
                    .params
                    .iter()
                    .position(|p| p == name)
                    .unwrap_or_else(|| panic!("unbound parameter '{name}' during emission"))
                    as u32;
                let dst = self.fresh();
                self.instrs.push(Instr::LoadParam { dst, index });
                dst
            }
            Expr::Neg(a) => {
                let src = self.emit(a);
                let dst = self.fresh();
                self.instrs.push(Instr::Neg { dst, src });
                dst
            }
            Expr::Add(a, b) => self.emit_binary(a, b, |dst, a, b| Instr::Add { dst, a, b }),
            Expr::Sub(a, b) => self.emit_binary(a, b, |dst, a, b| Instr::Sub { dst, a, b }),
            Expr::Mul(a, b) => self.emit_binary(a, b, |dst, a, b| Instr::Mul { dst, a, b }),
            Expr::Div(a, b) => self.emit_binary(a, b, |dst, a, b| Instr::Div { dst, a, b }),
            Expr::Pow(a, b) => self.emit_binary(a, b, |dst, a, b| Instr::Pow { dst, a, b }),
            Expr::Sin(a) => self.emit_unary(a, |dst, src| Instr::Sin { dst, src }),
            Expr::Cos(a) => self.emit_unary(a, |dst, src| Instr::Cos { dst, src }),
            Expr::Sqrt(a) => self.emit_unary(a, |dst, src| Instr::Sqrt { dst, src }),
            Expr::Exp(a) => self.emit_unary(a, |dst, src| Instr::Exp { dst, src }),
            Expr::Ln(a) => self.emit_unary(a, |dst, src| Instr::Ln { dst, src }),
        };
        self.memo.insert(expr.clone(), reg);
        reg
    }

    fn emit_unary(&mut self, a: &Expr, make: impl Fn(Reg, Reg) -> Instr) -> Reg {
        let src = self.emit(a);
        let dst = self.fresh();
        self.instrs.push(make(dst, src));
        dst
    }

    fn emit_binary(&mut self, a: &Expr, b: &Expr, make: impl Fn(Reg, Reg, Reg) -> Instr) -> Reg {
        let ra = self.emit(a);
        let rb = self.emit(b);
        let dst = self.fresh();
        self.instrs.push(make(dst, ra, rb));
        dst
    }
}

/// Evaluates a compiled expression into a caller-provided complex buffer. Helper used by
/// the TNVM's WRITE instruction.
pub fn write_unitary_into<T: Float>(
    compiled: &CompiledExpression,
    params: &[T],
    scratch: &mut [T],
    out: &mut [Complex<T>],
) {
    compiled.unitary_program().run(params, scratch, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    const U3_SRC: &str = "U3(a, b, c) {
        [
            [ cos(a/2), ~ e^(i*c) * sin(a/2) ],
            [ e^(i*b) * sin(a/2), e^(i*(b+c)) * cos(a/2) ],
        ]
    }";

    fn u3() -> UnitaryExpression {
        UnitaryExpression::new(U3_SRC).unwrap()
    }

    #[test]
    fn compiled_unitary_matches_tree_walk() {
        let expr = u3();
        let compiled = CompiledExpression::compile(&expr, &CompileOptions::default());
        for p in [[0.1, 0.2, 0.3], [1.4, -0.8, 2.2], [3.0, 0.0, -1.0]] {
            let fast = compiled.evaluate_unitary::<f64>(&p);
            let slow = expr.to_matrix::<f64>(&p).unwrap();
            assert!(fast.max_elementwise_distance(&slow) < 1e-12, "at {p:?}");
        }
    }

    #[test]
    fn compiled_gradient_matches_tree_walk() {
        let expr = u3();
        let compiled = CompiledExpression::compile(&expr, &CompileOptions::with_gradient());
        let p = [0.7, 1.3, -0.4];
        let (unitary, grads) = compiled.evaluate_with_gradient::<f64>(&p);
        let slow_u = expr.to_matrix::<f64>(&p).unwrap();
        let slow_g = expr.gradient_matrices::<f64>(&p).unwrap();
        assert!(unitary.max_elementwise_distance(&slow_u) < 1e-12);
        assert_eq!(grads.len(), 3);
        for (fast, slow) in grads.iter().zip(slow_g.iter()) {
            assert!(fast.max_elementwise_distance(slow) < 1e-12);
        }
    }

    #[test]
    fn cse_keeps_trig_instruction_count_low() {
        let expr = u3();
        let compiled = CompiledExpression::compile(&expr, &CompileOptions::default());
        let trig = compiled
            .unitary_program()
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Sin { .. } | Instr::Cos { .. }))
            .count();
        // U3 needs sin(a/2), cos(a/2), sin/cos of b, c (and possibly b+c reused via
        // angle-sum): at most 8 distinct trig evaluations, far fewer than the 12
        // occurrences in the unsimplified element trees.
        assert!(trig <= 8, "got {trig} trig instructions");
        // And no exponential/log should survive Euler expansion.
        assert!(!compiled
            .unitary_program()
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Exp { .. } | Instr::Ln { .. })));
    }

    #[test]
    fn skipping_simplification_still_correct() {
        let expr = u3();
        let opts = CompileOptions { skip_simplification: true, diff_mode: DiffMode::Gradient };
        let compiled = CompiledExpression::compile(&expr, &opts);
        let p = [0.5, 0.6, 0.7];
        let (unitary, _) = compiled.evaluate_with_gradient::<f64>(&p);
        assert!(unitary.max_elementwise_distance(&expr.to_matrix::<f64>(&p).unwrap()) < 1e-12);
    }

    #[test]
    fn constant_gate_compiles_to_constant_program() {
        let cnot =
            UnitaryExpression::new("CNOT() { [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]] }").unwrap();
        let compiled = CompiledExpression::compile(&cnot, &CompileOptions::default());
        assert_eq!(compiled.num_params(), 0);
        let m = compiled.evaluate_unitary::<f64>(&[]);
        assert!(m.is_unitary(1e-15));
        // Only constant loads are needed.
        assert!(compiled
            .unitary_program()
            .instrs
            .iter()
            .all(|i| matches!(i, Instr::LoadConst { .. })));
        // 0 and 1 are each loaded exactly once thanks to CSE.
        assert_eq!(compiled.unitary_program().len(), 2);
    }

    #[test]
    fn f32_precision_evaluation() {
        let expr = u3();
        let compiled = CompiledExpression::compile(&expr, &CompileOptions::with_gradient());
        let p32 = [0.3f32, 0.9, -1.1];
        let p64 = [0.3f64, 0.9, -1.1];
        let (u32m, _) = compiled.evaluate_with_gradient::<f32>(&p32);
        let (u64m, _) = compiled.evaluate_with_gradient::<f64>(&p64);
        assert!(u32m.to_f64().max_elementwise_distance(&u64m) < 1e-5);
    }

    #[test]
    fn metadata_accessors() {
        let compiled = CompiledExpression::compile(&u3(), &CompileOptions::with_gradient());
        assert_eq!(compiled.name(), "U3");
        assert_eq!(compiled.dim(), 2);
        assert_eq!(compiled.radices(), &[2]);
        assert_eq!(compiled.params().len(), 3);
        assert!(compiled.scratch_len() >= compiled.unitary_program().num_regs);
        assert!(compiled.gradient_program().is_some());
    }

    #[test]
    #[should_panic(expected = "without gradient")]
    fn gradient_requires_gradient_compilation() {
        let compiled = CompiledExpression::compile(&u3(), &CompileOptions::default());
        compiled.evaluate_with_gradient::<f64>(&[0.1, 0.2, 0.3]);
    }
}
