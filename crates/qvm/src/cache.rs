//! The expression cache.
//!
//! JIT compilation of a single QGL expression is orders of magnitude slower than a single
//! numerical evaluation of the resulting circuit, so the paper amortizes it with an
//! `ExpressionCache` attached to each circuit and managed as shared state: each unique
//! QGL expression is compiled only once per process, and subsequent TNVM initializations
//! retrieve the pre-compiled artifact via a fast lookup (Sec. IV-B).

use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::HashMap;

use qudit_qgl::UnitaryExpression;

use crate::compile::{CompileOptions, CompiledExpression, DiffMode};

/// A thread-safe cache of compiled expressions, keyed by the expression's canonical text
/// and the requested differentiation mode.
#[derive(Debug, Default, Clone)]
pub struct ExpressionCache {
    inner: Arc<Mutex<CacheInner>>,
}

#[derive(Debug, Default)]
struct CacheInner {
    compiled: HashMap<(String, bool), Arc<CompiledExpression>>,
    hits: u64,
    misses: u64,
}

/// Cache statistics, exposed for the construction benchmark and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups satisfied from the cache.
    pub hits: u64,
    /// Number of lookups that had to compile.
    pub misses: u64,
    /// Number of distinct compiled artifacts currently stored.
    pub entries: usize,
}

impl ExpressionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the compiled form of `expr`, compiling it (and caching the result) if
    /// this is the first time the expression is seen with this differentiation mode.
    pub fn get_or_compile(
        &self,
        expr: &UnitaryExpression,
        options: &CompileOptions,
    ) -> Arc<CompiledExpression> {
        self.get_or_compile_traced(expr, options).0
    }

    /// Like [`ExpressionCache::get_or_compile`], but also reports whether the lookup
    /// was a hit — letting callers (the TNVM) attribute lookup outcomes to their own
    /// deterministic counters instead of reading the racy shared totals.
    ///
    /// Determinism note: on a *cold* cache, two threads racing on the same key may
    /// both observe a miss (compilation happens outside the lock), so per-caller
    /// hit/miss counts are only schedule-independent once the cache has been prewarmed
    /// with every expression the callers will request — which is exactly what the
    /// synthesis search does before spawning frontier workers.
    pub fn get_or_compile_traced(
        &self,
        expr: &UnitaryExpression,
        options: &CompileOptions,
    ) -> (Arc<CompiledExpression>, bool) {
        let key = (expr.canonical_key(), options.diff_mode == DiffMode::Gradient);
        // Fast path: shared lock-and-lookup.
        {
            let mut inner = self.inner.lock();
            if let Some(found) = inner.compiled.get(&key) {
                let found = Arc::clone(found);
                inner.hits += 1;
                return (found, true);
            }
            inner.misses += 1;
        }
        // Compile outside the lock (compilation may take milliseconds).
        let compiled = Arc::new(CompiledExpression::compile(expr, options));
        let mut inner = self.inner.lock();
        (Arc::clone(inner.compiled.entry(key).or_insert(compiled)), false)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats { hits: inner.hits, misses: inner.misses, entries: inner.compiled.len() }
    }

    /// Removes every cached artifact (used by benchmarks that need cold-cache numbers).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.compiled.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

/// Returns a process-wide shared cache. Circuits created without an explicit cache share
/// this one, which mirrors the paper's "managed as shared state" design.
pub fn global_cache() -> ExpressionCache {
    static GLOBAL: std::sync::OnceLock<ExpressionCache> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ExpressionCache::new).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> UnitaryExpression {
        UnitaryExpression::new("RX(t) { [[cos(t/2), ~i*sin(t/2)], [~i*sin(t/2), cos(t/2)]] }")
            .unwrap()
    }

    #[test]
    fn second_lookup_hits_cache() {
        let cache = ExpressionCache::new();
        let a = cache.get_or_compile(&rx(), &CompileOptions::default());
        let b = cache.get_or_compile(&rx(), &CompileOptions::default());
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn gradient_mode_is_a_distinct_entry() {
        let cache = ExpressionCache::new();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        let _ = cache.get_or_compile(&rx(), &CompileOptions::with_gradient());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn different_gates_are_different_entries() {
        let cache = ExpressionCache::new();
        let rz = UnitaryExpression::new("RZ(t) { [[e^(~i*t/2), 0], [0, e^(i*t/2)]] }").unwrap();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        let _ = cache.get_or_compile(&rz, &CompileOptions::default());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ExpressionCache::new();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn cache_is_cloneable_shared_state() {
        let cache = ExpressionCache::new();
        let clone = cache.clone();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        // The clone sees the entry because the state is shared.
        assert_eq!(clone.stats().entries, 1);
        let _ = clone.get_or_compile(&rx(), &CompileOptions::default());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn global_cache_is_shared() {
        let a = global_cache();
        let b = global_cache();
        let before = a.stats().entries;
        let _ = a.get_or_compile(&rx(), &CompileOptions::default());
        assert!(b.stats().entries >= before);
    }

    #[test]
    fn traced_lookup_reports_hit_flag() {
        let cache = ExpressionCache::new();
        let (_, hit) = cache.get_or_compile_traced(&rx(), &CompileOptions::default());
        assert!(!hit, "first lookup must miss");
        let (_, hit) = cache.get_or_compile_traced(&rx(), &CompileOptions::default());
        assert!(hit, "second lookup must hit");
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<ExpressionCache>();
    }
}
