//! The expression cache.
//!
//! JIT compilation of a single QGL expression is orders of magnitude slower than a single
//! numerical evaluation of the resulting circuit, so the paper amortizes it with an
//! `ExpressionCache` attached to each circuit and managed as shared state: each unique
//! QGL expression is compiled only once per process, and subsequent TNVM initializations
//! retrieve the pre-compiled artifact via a fast lookup (Sec. IV-B).

use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::HashMap;

use qudit_qgl::UnitaryExpression;

use crate::compile::{CompileOptions, CompiledExpression, DiffMode};

/// A thread-safe cache of compiled expressions, keyed by the expression's canonical text
/// and the requested differentiation mode.
///
/// By default the cache grows without bound — the right policy for a single
/// compilation, whose working set is the gate set. A long-lived service sharing one
/// cache across arbitrarily many requests caps it with
/// [`ExpressionCache::with_capacity`]: inserts beyond the capacity evict the
/// least-recently-used artifact, and [`CacheStats::evictions`] counts them so the
/// service's metrics endpoint can expose cache pressure.
#[derive(Debug, Default, Clone)]
pub struct ExpressionCache {
    inner: Arc<Mutex<CacheInner>>,
}

#[derive(Debug, Default)]
struct CacheInner {
    compiled: HashMap<(String, bool), CacheEntry>,
    /// Maximum number of stored artifacts (`0` = unbounded).
    capacity: usize,
    /// Logical clock advanced on every touch; drives least-recently-used eviction.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    artifact: Arc<CompiledExpression>,
    last_used: u64,
}

impl CacheInner {
    /// Marks `key` used now and returns its artifact, if present.
    fn touch(&mut self, key: &(String, bool)) -> Option<Arc<CompiledExpression>> {
        self.tick += 1;
        let tick = self.tick;
        self.compiled.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.artifact)
        })
    }

    /// Evicts least-recently-used entries until an insert fits the capacity.
    fn make_room(&mut self) {
        if self.capacity == 0 {
            return;
        }
        while self.compiled.len() >= self.capacity {
            // The victim is iteration-order-independent: min over the
            // (last_used, key) pair is a total order.
            // detlint: allow(unsorted-map-iter) — min over a total order
            let victim = (self.compiled.iter())
                .min_by(|a, b| (a.1.last_used, a.0).cmp(&(b.1.last_used, b.0)))
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => {
                    self.compiled.remove(&key);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

/// Cache statistics, exposed for the construction benchmark, the serve metrics
/// endpoint, and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups satisfied from the cache.
    pub hits: u64,
    /// Number of lookups that had to compile.
    pub misses: u64,
    /// Number of distinct compiled artifacts currently stored.
    pub entries: usize,
    /// Number of artifacts evicted to keep the cache within its capacity.
    pub evictions: u64,
}

impl ExpressionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache that holds at most `capacity` compiled artifacts,
    /// evicting the least-recently-used entry on overflow (`0` = unbounded,
    /// identical to [`ExpressionCache::new`]).
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = Self::default();
        cache.inner.lock().capacity = capacity;
        cache
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Returns the compiled form of `expr`, compiling it (and caching the result) if
    /// this is the first time the expression is seen with this differentiation mode.
    pub fn get_or_compile(
        &self,
        expr: &UnitaryExpression,
        options: &CompileOptions,
    ) -> Arc<CompiledExpression> {
        self.get_or_compile_traced(expr, options).0
    }

    /// Like [`ExpressionCache::get_or_compile`], but also reports whether the lookup
    /// was a hit — letting callers (the TNVM) attribute lookup outcomes to their own
    /// deterministic counters instead of reading the racy shared totals.
    ///
    /// Determinism note: on a *cold* cache, two threads racing on the same key may
    /// both observe a miss (compilation happens outside the lock), so per-caller
    /// hit/miss counts are only schedule-independent once the cache has been prewarmed
    /// with every expression the callers will request — which is exactly what the
    /// synthesis search does before spawning frontier workers.
    pub fn get_or_compile_traced(
        &self,
        expr: &UnitaryExpression,
        options: &CompileOptions,
    ) -> (Arc<CompiledExpression>, bool) {
        let key = (expr.canonical_key(), options.diff_mode == DiffMode::Gradient);
        // Fast path: shared lock-and-lookup.
        {
            let mut inner = self.inner.lock();
            if let Some(found) = inner.touch(&key) {
                inner.hits += 1;
                return (found, true);
            }
            inner.misses += 1;
        }
        // Compile outside the lock (compilation may take milliseconds).
        let compiled = Arc::new(CompiledExpression::compile(expr, options));
        let mut inner = self.inner.lock();
        if let Some(found) = inner.touch(&key) {
            // Another thread raced the compile and inserted first; keep its artifact.
            return (found, false);
        }
        inner.make_room();
        inner.tick += 1;
        let entry = CacheEntry { artifact: Arc::clone(&compiled), last_used: inner.tick };
        inner.compiled.insert(key, entry);
        (compiled, false)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.compiled.len(),
            evictions: inner.evictions,
        }
    }

    /// Removes every cached artifact (used by benchmarks that need cold-cache numbers).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.compiled.clear();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }
}

/// Returns a process-wide shared cache. Circuits created without an explicit cache share
/// this one, which mirrors the paper's "managed as shared state" design.
pub fn global_cache() -> ExpressionCache {
    static GLOBAL: std::sync::OnceLock<ExpressionCache> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ExpressionCache::new).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> UnitaryExpression {
        UnitaryExpression::new("RX(t) { [[cos(t/2), ~i*sin(t/2)], [~i*sin(t/2), cos(t/2)]] }")
            .unwrap()
    }

    #[test]
    fn second_lookup_hits_cache() {
        let cache = ExpressionCache::new();
        let a = cache.get_or_compile(&rx(), &CompileOptions::default());
        let b = cache.get_or_compile(&rx(), &CompileOptions::default());
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn gradient_mode_is_a_distinct_entry() {
        let cache = ExpressionCache::new();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        let _ = cache.get_or_compile(&rx(), &CompileOptions::with_gradient());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn different_gates_are_different_entries() {
        let cache = ExpressionCache::new();
        let rz = UnitaryExpression::new("RZ(t) { [[e^(~i*t/2), 0], [0, e^(i*t/2)]] }").unwrap();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        let _ = cache.get_or_compile(&rz, &CompileOptions::default());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ExpressionCache::new();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn cache_is_cloneable_shared_state() {
        let cache = ExpressionCache::new();
        let clone = cache.clone();
        let _ = cache.get_or_compile(&rx(), &CompileOptions::default());
        // The clone sees the entry because the state is shared.
        assert_eq!(clone.stats().entries, 1);
        let _ = clone.get_or_compile(&rx(), &CompileOptions::default());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn global_cache_is_shared() {
        let a = global_cache();
        let b = global_cache();
        let before = a.stats().entries;
        let _ = a.get_or_compile(&rx(), &CompileOptions::default());
        assert!(b.stats().entries >= before);
    }

    #[test]
    fn traced_lookup_reports_hit_flag() {
        let cache = ExpressionCache::new();
        let (_, hit) = cache.get_or_compile_traced(&rx(), &CompileOptions::default());
        assert!(!hit, "first lookup must miss");
        let (_, hit) = cache.get_or_compile_traced(&rx(), &CompileOptions::default());
        assert!(hit, "second lookup must hit");
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<ExpressionCache>();
    }

    fn named(name: &str) -> UnitaryExpression {
        UnitaryExpression::new(&format!(
            "{name}(t) {{ [[cos(t/{n}), ~i*sin(t/{n})], [~i*sin(t/{n}), cos(t/{n})]] }}",
            n = 2 + name.len()
        ))
        .unwrap()
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = ExpressionCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let (a, b, c) = (named("A"), named("BB"), named("CCC"));
        let _ = cache.get_or_compile(&a, &CompileOptions::default());
        let _ = cache.get_or_compile(&b, &CompileOptions::default());
        // Touch A so B becomes the least recently used, then insert C.
        let _ = cache.get_or_compile(&a, &CompileOptions::default());
        let _ = cache.get_or_compile(&c, &CompileOptions::default());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // A survived (recently used); B was evicted and must recompile.
        let (_, hit) = cache.get_or_compile_traced(&a, &CompileOptions::default());
        assert!(hit, "recently used entry must survive eviction");
        let (_, hit) = cache.get_or_compile_traced(&b, &CompileOptions::default());
        assert!(!hit, "least recently used entry must have been evicted");
        assert_eq!(cache.stats().evictions, 2, "re-inserting B evicts again at capacity");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ExpressionCache::new();
        assert_eq!(cache.capacity(), 0);
        for name in ["A", "BB", "CCC", "DDDD", "EEEEE"] {
            let _ = cache.get_or_compile(&named(name), &CompileOptions::default());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.evictions, 0);
    }
}
