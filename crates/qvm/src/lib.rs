//! # qudit-qvm
//!
//! The expression "JIT" of the OpenQudit reproduction.
//!
//! The paper lowers each unique QGL expression to native code with LLVM at TNVM
//! initialization time. This crate provides the equivalent stage as a register-bytecode
//! expression virtual machine (see `DESIGN.md` §3 for why the substitution preserves the
//! evaluated behaviour): symbolic simplification via `qudit-egraph`, emission of a flat,
//! CSE-deduplicated register program, and an [`ExpressionCache`] that guarantees each
//! unique expression is compiled once per process.
//!
//! # Example
//!
//! ```
//! use qudit_qgl::UnitaryExpression;
//! use qudit_qvm::{CompiledExpression, CompileOptions};
//!
//! let rx = UnitaryExpression::new(
//!     "RX(t) { [[cos(t/2), ~i*sin(t/2)], [~i*sin(t/2), cos(t/2)]] }",
//! )?;
//! let compiled = CompiledExpression::compile(&rx, &CompileOptions::with_gradient());
//! let (unitary, grads) = compiled.evaluate_with_gradient::<f64>(&[0.7]);
//! assert!(unitary.is_unitary(1e-12));
//! assert_eq!(grads.len(), 1);
//! # Ok::<(), qudit_qgl::QglError>(())
//! ```

pub mod cache;
pub mod compile;
pub mod program;

pub use cache::{global_cache, CacheStats, ExpressionCache};
pub use compile::{write_unitary_into, CompileOptions, CompiledExpression, DiffMode};
pub use program::{ExprProgram, Instr, OutputSlot, Reg};
