//! Flat register programs for compiled QGL expressions.
//!
//! The paper JIT-compiles each unique QGL expression with LLVM into a native function
//! that maps a parameter vector to the gate's matrix elements (and, when requested, the
//! elements of every partial derivative). In this reproduction the compiled artifact is
//! an [`ExprProgram`]: a flat sequence of register instructions with all common
//! subexpressions deduplicated at compile time, executed by a tight interpreter loop with
//! no allocation, hashing, or tree traversal on the hot path (see DESIGN.md §3 for the
//! substitution rationale).

use qudit_tensor::{Complex, Float};

/// A virtual register index.
pub type Reg = u32;

/// A single scalar instruction of the expression VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `reg[dst] = params[index]`
    LoadParam {
        /// Destination register.
        dst: Reg,
        /// Index into the parameter vector.
        index: u32,
    },
    /// `reg[dst] = value`
    LoadConst {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        value: f64,
    },
    /// `reg[dst] = -reg[src]`
    Neg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `reg[dst] = reg[a] + reg[b]`
    Add {
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `reg[dst] = reg[a] - reg[b]`
    Sub {
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `reg[dst] = reg[a] * reg[b]`
    Mul {
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `reg[dst] = reg[a] / reg[b]`
    Div {
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `reg[dst] = reg[a].powf(reg[b])`
    Pow {
        /// Destination register.
        dst: Reg,
        /// Base register.
        a: Reg,
        /// Exponent register.
        b: Reg,
    },
    /// `reg[dst] = sin(reg[src])`
    Sin {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `reg[dst] = cos(reg[src])`
    Cos {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `reg[dst] = sqrt(reg[src])`
    Sqrt {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `reg[dst] = exp(reg[src])`
    Exp {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `reg[dst] = ln(reg[src])`
    Ln {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
}

/// Where a compiled output element comes from: the pair of registers holding its real
/// and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputSlot {
    /// Register holding the real part.
    pub re: Reg,
    /// Register holding the imaginary part.
    pub im: Reg,
}

/// A compiled, flat register program evaluating a batch of complex outputs from a real
/// parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprProgram {
    /// The instruction sequence, in dependency order.
    pub instrs: Vec<Instr>,
    /// Number of registers required.
    pub num_regs: usize,
    /// Number of parameters expected.
    pub num_params: usize,
    /// One slot per complex output, in row-major output order.
    pub outputs: Vec<OutputSlot>,
}

impl ExprProgram {
    /// Number of scalar instructions (a proxy for per-call cost, reported by the
    /// expression-evaluation benchmark).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Executes the program, writing each complex output into `out`.
    ///
    /// `scratch` must have at least [`ExprProgram::num_regs`] elements; it is a caller
    /// provided buffer so the hot loop performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `params`, `scratch`, or `out` are smaller than the program requires.
    #[inline]
    pub fn run<T: Float>(&self, params: &[T], scratch: &mut [T], out: &mut [Complex<T>]) {
        assert!(params.len() >= self.num_params, "parameter vector too short");
        assert!(scratch.len() >= self.num_regs, "scratch buffer too small");
        assert!(out.len() >= self.outputs.len(), "output buffer too small");
        for instr in &self.instrs {
            match *instr {
                Instr::LoadParam { dst, index } => scratch[dst as usize] = params[index as usize],
                Instr::LoadConst { dst, value } => scratch[dst as usize] = T::from_f64(value),
                Instr::Neg { dst, src } => scratch[dst as usize] = -scratch[src as usize],
                Instr::Add { dst, a, b } => {
                    scratch[dst as usize] = scratch[a as usize] + scratch[b as usize]
                }
                Instr::Sub { dst, a, b } => {
                    scratch[dst as usize] = scratch[a as usize] - scratch[b as usize]
                }
                Instr::Mul { dst, a, b } => {
                    scratch[dst as usize] = scratch[a as usize] * scratch[b as usize]
                }
                Instr::Div { dst, a, b } => {
                    scratch[dst as usize] = scratch[a as usize] / scratch[b as usize]
                }
                Instr::Pow { dst, a, b } => {
                    scratch[dst as usize] = scratch[a as usize].powf(scratch[b as usize])
                }
                Instr::Sin { dst, src } => scratch[dst as usize] = scratch[src as usize].sin(),
                Instr::Cos { dst, src } => scratch[dst as usize] = scratch[src as usize].cos(),
                Instr::Sqrt { dst, src } => scratch[dst as usize] = scratch[src as usize].sqrt(),
                Instr::Exp { dst, src } => scratch[dst as usize] = scratch[src as usize].exp(),
                Instr::Ln { dst, src } => scratch[dst as usize] = scratch[src as usize].ln(),
            }
        }
        for (slot, o) in self.outputs.iter().zip(out.iter_mut()) {
            *o = Complex::new(scratch[slot.re as usize], scratch[slot.im as usize]);
        }
    }

    /// Convenience wrapper allocating the scratch and output buffers (slow path; tests
    /// and one-off evaluations only).
    pub fn run_alloc<T: Float>(&self, params: &[T]) -> Vec<Complex<T>> {
        let mut scratch = vec![T::zero(); self.num_regs];
        let mut out = vec![Complex::zero(); self.outputs.len()];
        self.run(params, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> ExprProgram {
        // out[0] = (p0 + 1) + i*(p0 * p0)
        ExprProgram {
            instrs: vec![
                Instr::LoadParam { dst: 0, index: 0 },
                Instr::LoadConst { dst: 1, value: 1.0 },
                Instr::Add { dst: 2, a: 0, b: 1 },
                Instr::Mul { dst: 3, a: 0, b: 0 },
            ],
            num_regs: 4,
            num_params: 1,
            outputs: vec![OutputSlot { re: 2, im: 3 }],
        }
    }

    #[test]
    fn runs_and_writes_outputs() {
        let p = tiny_program();
        let out = p.run_alloc(&[3.0f64]);
        assert_eq!(out[0], Complex::new(4.0, 9.0));
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn works_in_single_precision() {
        let p = tiny_program();
        let out = p.run_alloc(&[2.0f32]);
        assert_eq!(out[0], Complex::new(3.0f32, 4.0));
    }

    #[test]
    fn transcendental_instructions() {
        let p = ExprProgram {
            instrs: vec![
                Instr::LoadParam { dst: 0, index: 0 },
                Instr::Sin { dst: 1, src: 0 },
                Instr::Cos { dst: 2, src: 0 },
                Instr::Sqrt { dst: 3, src: 0 },
                Instr::Exp { dst: 4, src: 0 },
                Instr::Ln { dst: 5, src: 0 },
                Instr::Neg { dst: 6, src: 1 },
                Instr::Sub { dst: 7, a: 2, b: 1 },
                Instr::Div { dst: 8, a: 1, b: 2 },
                Instr::LoadConst { dst: 9, value: 2.0 },
                Instr::Pow { dst: 10, a: 0, b: 9 },
            ],
            num_regs: 11,
            num_params: 1,
            outputs: vec![
                OutputSlot { re: 1, im: 2 },
                OutputSlot { re: 3, im: 4 },
                OutputSlot { re: 5, im: 6 },
                OutputSlot { re: 7, im: 8 },
                OutputSlot { re: 10, im: 0 },
            ],
        };
        let x = 0.83f64;
        let out = p.run_alloc(&[x]);
        assert!((out[0].re - x.sin()).abs() < 1e-15);
        assert!((out[0].im - x.cos()).abs() < 1e-15);
        assert!((out[1].re - x.sqrt()).abs() < 1e-15);
        assert!((out[1].im - x.exp()).abs() < 1e-15);
        assert!((out[2].re - x.ln()).abs() < 1e-15);
        assert!((out[2].im + x.sin()).abs() < 1e-15);
        assert!((out[3].re - (x.cos() - x.sin())).abs() < 1e-15);
        assert!((out[3].im - x.sin() / x.cos()).abs() < 1e-15);
        assert!((out[4].re - x * x).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "parameter vector too short")]
    fn parameter_underflow_panics() {
        tiny_program().run_alloc::<f64>(&[]);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn output_underflow_panics() {
        let p = tiny_program();
        let mut scratch = vec![0.0f64; p.num_regs];
        let mut out: Vec<Complex<f64>> = Vec::new();
        p.run(&[1.0], &mut scratch, &mut out);
    }
}
