//! The Tensor Network Virtual Machine (TNVM).
//!
//! The TNVM is a lightweight runtime that executes the bytecode produced by the AOT
//! compiler (`qudit-network`). Instantiation performs the one-time preparatory work the
//! paper describes (Sec. IV-B): it allocates a single contiguous arena for every
//! intermediate buffer, eagerly compiles every unique QGL expression referenced by WRITE
//! instructions (through the shared [`ExpressionCache`]), and immediately executes the
//! constant section. Every subsequent [`Tnvm::evaluate`] call only walks the dynamic
//! instruction list.
//!
//! Gradients are propagated with forward-mode automatic differentiation: the AOT compiler
//! annotates each buffer with the circuit parameters it depends on, and each instruction
//! is specialized accordingly (product rule on MATMUL/KRON/HADAMARD with overlapping
//! parameter sets, plain linear maps on TRANSPOSE).

use std::sync::Arc;

use qudit_network::{BufId, ParamBinding, TnvmOp, TnvmProgram};
use qudit_qvm::{CompileOptions, CompiledExpression, DiffMode, ExpressionCache};

use crate::backend::{BackendKind, ExecPlan, KernelSel};
use crate::counters::{BilinearTally, KernelCounters};
use qudit_tensor::complex::{Complex, Float};
use qudit_tensor::gemm;
use qudit_tensor::kron;
use qudit_tensor::permute;
use qudit_tensor::Matrix;

/// The result of one TNVM evaluation.
#[derive(Debug, Clone)]
pub struct EvalResult<T> {
    /// The circuit unitary.
    pub unitary: Matrix<T>,
    /// One ∂U/∂θᵢ per circuit parameter (empty when gradients were not requested).
    pub gradient: Vec<Matrix<T>>,
}

/// The Tensor Network Virtual Machine, generic over the numerical precision.
#[derive(Debug)]
pub struct Tnvm<T: Float> {
    program: TnvmProgram,
    diff_mode: DiffMode,
    /// The execution tier the program is lowered through.
    backend: BackendKind,
    /// The backend's lowering of `program`: per-instruction kernel selections.
    plan: ExecPlan,
    compiled: Vec<Arc<CompiledExpression>>,
    /// Single arena holding every buffer's value storage.
    values: Vec<Complex<T>>,
    /// Offset of each buffer inside `values`.
    value_offsets: Vec<usize>,
    /// Arena holding gradient blocks.
    grads: Vec<Complex<T>>,
    /// For each buffer, the (circuit parameter, gradient-arena offset) pairs.
    grad_slots: Vec<Vec<(usize, usize)>>,
    /// Scratch registers for compiled-expression execution.
    scratch: Vec<T>,
    /// Staging buffer for WRITE outputs (unitary + per-gate-parameter gradients).
    write_staging: Vec<Complex<T>>,
    /// Staging buffer for gate parameter values.
    param_staging: Vec<T>,
    /// Scratch for TRANSPOSE outputs of gradient blocks.
    transpose_staging: Vec<Complex<T>>,
    /// Workspace for blocked kernels (packed structure-of-arrays panels).
    kernel_ws: Vec<T>,
    /// Deterministic dispatch/flop/cache accounting, local to this VM (see
    /// [`crate::counters`] for why locality matters).
    counters: KernelCounters,
}

impl<T: Float> Tnvm<T> {
    /// Builds a TNVM for `program`, compiling all expressions through `cache` and
    /// executing the constant section.
    ///
    /// The execution tier is the process default ([`BackendKind::from_env`]); use
    /// [`Tnvm::with_backend`] to pick one explicitly.
    pub fn new(program: &TnvmProgram, diff_mode: DiffMode, cache: &ExpressionCache) -> Self {
        Self::with_backend(program, diff_mode, cache, BackendKind::default())
    }

    /// Builds a TNVM lowered through an explicit execution tier.
    pub fn with_backend(
        program: &TnvmProgram,
        diff_mode: DiffMode,
        cache: &ExpressionCache,
        backend: BackendKind,
    ) -> Self {
        let mut vm = Tnvm {
            program: program.clone(),
            diff_mode,
            backend,
            plan: ExecPlan::default(),
            compiled: Vec::new(),
            values: Vec::new(),
            value_offsets: Vec::new(),
            grads: Vec::new(),
            grad_slots: Vec::new(),
            scratch: Vec::new(),
            write_staging: Vec::new(),
            param_staging: Vec::new(),
            transpose_staging: Vec::new(),
            kernel_ws: Vec::new(),
            counters: KernelCounters::default(),
        };
        vm.reinit(cache);
        vm
    }

    /// Re-targets the VM at a new program in place — the *recompile-on-expansion* path.
    ///
    /// A bottom-up synthesis search recompiles thousands of slightly extended circuits;
    /// building a fresh [`Tnvm`] for each would reallocate every arena from scratch.
    /// `load` keeps the differentiation mode, pulls compiled expressions from `cache`
    /// (hits for every gate already seen this process), reuses the existing arena and
    /// staging allocations when their capacity suffices, and re-executes the constant
    /// section of the new program.
    pub fn load(&mut self, program: &TnvmProgram, cache: &ExpressionCache) {
        self.program.clone_from(program);
        self.reinit(cache);
    }

    /// (Re)builds every derived structure — compiled expressions, arenas, staging
    /// buffers — from `self.program`, reusing existing allocations, and executes the
    /// constant section.
    fn reinit(&mut self, cache: &ExpressionCache) {
        let options = match self.diff_mode {
            DiffMode::None => CompileOptions::default(),
            DiffMode::Gradient => CompileOptions::with_gradient(),
        };
        let program = &self.program;
        self.compiled.clear();
        let mut hits = 0u64;
        let mut misses = 0u64;
        self.compiled.extend(program.exprs.iter().map(|e| {
            let (compiled, hit) = cache.get_or_compile_traced(e, &options);
            if hit {
                hits += 1;
            } else {
                misses += 1;
            }
            compiled
        }));
        self.counters.cache_hits += hits;
        self.counters.cache_misses += misses;

        // Value arena. A coalesced layout attached by the optimizer overrides the
        // default back-to-back placement; `TnvmProgram::validate` and the analyze
        // verifier guarantee it is sound before it reaches the VM.
        self.value_offsets.clear();
        let total = match &program.layout {
            Some(layout) => {
                self.value_offsets.extend_from_slice(&layout.offsets);
                layout.arena_len
            }
            None => {
                let mut total = 0usize;
                for buf in &program.buffers {
                    self.value_offsets.push(total);
                    total += buf.len();
                }
                total
            }
        };
        self.values.clear();
        self.values.resize(total, Complex::zero());

        // Gradient arena: one block per (buffer, dependent parameter).
        self.grad_slots.clear();
        let mut grad_total = 0usize;
        for buf in &program.buffers {
            let mut slots = Vec::with_capacity(buf.params.len());
            if self.diff_mode == DiffMode::Gradient {
                for &p in &buf.params {
                    slots.push((p, grad_total));
                    grad_total += buf.len();
                }
            }
            self.grad_slots.push(slots);
        }
        self.grads.clear();
        self.grads.resize(grad_total, Complex::zero());

        let scratch_len = self.compiled.iter().map(|c| c.scratch_len()).max().unwrap_or(0);
        let max_gate_out = self
            .compiled
            .iter()
            .map(|c| (1 + c.num_params()) * c.dim() * c.dim())
            .max()
            .unwrap_or(0);
        let max_gate_params = self.compiled.iter().map(|c| c.num_params()).max().unwrap_or(0);
        let max_buf_len = program.buffers.iter().map(|b| b.len()).max().unwrap_or(0);
        self.scratch.clear();
        self.scratch.resize(scratch_len, T::zero());
        self.write_staging.clear();
        self.write_staging.resize(max_gate_out, Complex::zero());
        self.param_staging.clear();
        self.param_staging.resize(max_gate_params, T::zero());
        self.transpose_staging.clear();
        self.transpose_staging.resize(max_buf_len, Complex::zero());

        // Lower the program through the execution tier: one kernel selection per
        // instruction, plus the workspace the selected kernels need.
        self.plan = self.backend.instance().lower(&self.program);
        self.kernel_ws.clear();
        self.kernel_ws.resize(self.plan.workspace_scalars, T::zero());

        // The constant section never reads circuit parameters.
        self.run_section(true, &[]);
    }

    /// The differentiation mode the VM was instantiated with.
    pub fn diff_mode(&self) -> DiffMode {
        self.diff_mode
    }

    /// The execution tier the VM lowers its program through.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The backend's lowering of the current program.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The dispatch/flop/cache counters accumulated since construction (or since the
    /// last [`Tnvm::take_counters`]).
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }

    /// Returns the accumulated counters and resets them to zero — the handoff used by
    /// instantiation to attribute kernel work to individual optimization starts.
    pub fn take_counters(&mut self) -> KernelCounters {
        std::mem::take(&mut self.counters)
    }

    /// Number of circuit parameters expected by [`Tnvm::evaluate`].
    pub fn num_params(&self) -> usize {
        self.program.num_params
    }

    /// The circuit's Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.program.dim()
    }

    /// Total bytes of numerical storage held by the VM (value arena, gradient arena,
    /// staging buffers, and per-backend kernel workspace). This is the quantity behind
    /// the paper's "211 KB for the 3-qubit shallow benchmark" observation; including the
    /// tier workspace keeps the bench report's memory column honest across backends.
    pub fn memory_bytes(&self) -> usize {
        let c = std::mem::size_of::<Complex<T>>();
        let f = std::mem::size_of::<T>();
        self.values.len() * c
            + self.grads.len() * c
            + self.write_staging.len() * c
            + self.transpose_staging.len() * c
            + self.scratch.len() * f
            + self.param_staging.len() * f
            + self.kernel_ws.len() * f
    }

    /// Evaluates the circuit unitary (and gradient, when enabled) at `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from [`Tnvm::num_params`].
    pub fn evaluate(&mut self, params: &[T]) -> EvalResult<T> {
        assert_eq!(
            params.len(),
            self.program.num_params,
            "TNVM expects {} parameter(s)",
            self.program.num_params
        );
        self.counters.evaluations += 1;
        self.run_section(false, params);

        let out = self.program.output;
        let info = &self.program.buffers[out];
        let dim = info.rows;
        let start = self.value_offsets[out];
        let unitary =
            Matrix::from_vec(dim, info.cols, self.values[start..start + info.len()].to_vec())
                .expect("output buffer has matrix shape");

        let gradient = if self.diff_mode == DiffMode::Gradient {
            let mut grads = vec![Matrix::zeros(dim, info.cols); self.program.num_params];
            for &(param, offset) in &self.grad_slots[out] {
                grads[param] = Matrix::from_vec(
                    dim,
                    info.cols,
                    self.grads[offset..offset + info.len()].to_vec(),
                )
                .expect("gradient block has matrix shape");
            }
            grads
        } else {
            Vec::new()
        };
        EvalResult { unitary, gradient }
    }

    /// Evaluates only the unitary (valid in any differentiation mode).
    pub fn evaluate_unitary(&mut self, params: &[T]) -> Matrix<T> {
        self.evaluate(params).unitary
    }

    fn run_section(&mut self, constant: bool, params: &[T]) {
        let ops = if constant {
            std::mem::take(&mut self.program.constant_ops)
        } else {
            std::mem::take(&mut self.program.dynamic_ops)
        };
        let kernels = if constant {
            std::mem::take(&mut self.plan.constant_kernels)
        } else {
            std::mem::take(&mut self.plan.dynamic_kernels)
        };
        debug_assert_eq!(ops.len(), kernels.len(), "plan out of sync with program section");
        for (op, &kernel) in ops.iter().zip(kernels.iter()) {
            self.execute(op, kernel, params);
        }
        if constant {
            self.program.constant_ops = ops;
            self.plan.constant_kernels = kernels;
        } else {
            self.program.dynamic_ops = ops;
            self.plan.dynamic_kernels = kernels;
        }
    }

    fn value_range(&self, buf: BufId) -> (usize, usize) {
        let start = self.value_offsets[buf];
        (start, start + self.program.buffers[buf].len())
    }

    fn grad_offset(&self, buf: BufId, param: usize) -> Option<usize> {
        self.grad_slots[buf].iter().find(|(p, _)| *p == param).map(|(_, o)| *o)
    }

    fn execute(&mut self, op: &TnvmOp, kernel: KernelSel, params: &[T]) {
        match op {
            TnvmOp::Write { expr_index, bindings, out } => {
                self.exec_write(*expr_index, bindings, *out, params)
            }
            TnvmOp::Matmul { a, b, out } => {
                self.exec_bilinear(*a, *b, *out, BilinearKind::Matmul, kernel)
            }
            TnvmOp::Kron { a, b, out } => {
                self.exec_bilinear(*a, *b, *out, BilinearKind::Kron, kernel)
            }
            TnvmOp::Hadamard { a, b, out } => {
                self.exec_bilinear(*a, *b, *out, BilinearKind::Hadamard, kernel)
            }
            TnvmOp::Transpose { input, shape, perm, out } => {
                self.exec_transpose(*input, shape, perm, *out)
            }
        }
    }

    fn exec_write(
        &mut self,
        expr_index: usize,
        bindings: &[ParamBinding],
        out: BufId,
        params: &[T],
    ) {
        let compiled = Arc::clone(&self.compiled[expr_index]);
        let n = compiled.dim() * compiled.dim();
        self.counters.writes += 1;
        // Gather gate parameter values.
        for (k, binding) in bindings.iter().enumerate() {
            self.param_staging[k] = match binding {
                ParamBinding::Constant(v) => T::from_f64(*v),
                ParamBinding::Circuit(i) => params[*i],
            };
        }
        let gate_params = &self.param_staging[..bindings.len()];
        let needs_grad = self.diff_mode == DiffMode::Gradient && !self.grad_slots[out].is_empty();
        let (start, end) = self.value_range(out);
        if needs_grad {
            let program =
                compiled.gradient_program().expect("gradient mode compiles gradient programs");
            program.run(gate_params, &mut self.scratch, &mut self.write_staging);
            self.values[start..end].copy_from_slice(&self.write_staging[..n]);
            // Distribute gate-parameter gradients onto circuit-parameter slots.
            // First zero all slots of this buffer.
            let slots = self.grad_slots[out].clone();
            for &(_, offset) in &slots {
                for v in &mut self.grads[offset..offset + n] {
                    *v = Complex::zero();
                }
            }
            for (k, binding) in bindings.iter().enumerate() {
                if let ParamBinding::Circuit(p) = binding {
                    if let Some(offset) = self.grad_offset(out, *p) {
                        let src = &self.write_staging[(k + 1) * n..(k + 2) * n];
                        for (dst, s) in self.grads[offset..offset + n].iter_mut().zip(src) {
                            *dst += *s;
                        }
                    }
                }
            }
        } else {
            compiled.unitary_program().run(gate_params, &mut self.scratch, &mut self.write_staging);
            self.values[start..end].copy_from_slice(&self.write_staging[..n]);
        }
    }

    fn exec_bilinear(
        &mut self,
        a: BufId,
        b: BufId,
        out: BufId,
        kind: BilinearKind,
        kernel: KernelSel,
    ) {
        let (ar, ac) = (self.program.buffers[a].rows, self.program.buffers[a].cols);
        let (br, bc) = (self.program.buffers[b].rows, self.program.buffers[b].cols);
        let (a_start, a_end) = self.value_range(a);
        let (b_start, b_end) = self.value_range(b);
        let (o_start, o_end) = self.value_range(out);
        // Kernel invocations this instruction makes: the value call plus one
        // product-rule call per surviving gradient term (counted below).
        let mut calls = 1u64;

        // Value.
        {
            // Split borrows: copy input slices is avoided by unsafe-free split via
            // indices — use temporary pointers through split_at_mut on a single arena.
            let (a_vals, b_vals, out_vals) = three_slices(
                &mut self.values,
                (a_start, a_end),
                (b_start, b_end),
                (o_start, o_end),
            );
            kind.apply(
                a_vals,
                ar,
                ac,
                b_vals,
                br,
                bc,
                out_vals,
                false,
                kernel,
                &mut self.kernel_ws,
            );
        }

        // Gradients: d(out) = d(a)∘b + a∘d(b), with terms dropped when the operand does
        // not depend on the parameter.
        if self.diff_mode == DiffMode::Gradient {
            let out_slots = self.grad_slots[out].clone();
            for (param, out_offset) in out_slots {
                let n = o_end - o_start;
                for v in &mut self.grads[out_offset..out_offset + n] {
                    *v = Complex::zero();
                }
                // d(a) * b
                if let Some(a_goff) = self.grad_offset(a, param) {
                    calls += 1;
                    let (da, bv, dout) = grad_value_out(
                        &mut self.grads,
                        &self.values,
                        (a_goff, a_goff + (a_end - a_start)),
                        (b_start, b_end),
                        (out_offset, out_offset + n),
                    );
                    kind.apply(da, ar, ac, bv, br, bc, dout, true, kernel, &mut self.kernel_ws);
                }
                // a * d(b)
                if let Some(b_goff) = self.grad_offset(b, param) {
                    calls += 1;
                    let (db, av, dout) = grad_value_out(
                        &mut self.grads,
                        &self.values,
                        (b_goff, b_goff + (b_end - b_start)),
                        (a_start, a_end),
                        (out_offset, out_offset + n),
                    );
                    // Note operand order: value(a) ∘ grad(b).
                    kind.apply(av, ar, ac, db, br, bc, dout, true, kernel, &mut self.kernel_ws);
                }
            }
        }

        // Static flop estimate: 8 real flops per complex multiply-add for MATMUL
        // (m·n·k of them), 6 per output element for the multiply-only KRON/HADAMARD.
        let (tally, flops_per_call) = match kind {
            BilinearKind::Matmul => (BilinearTally::Matmul, 8 * (ar * bc * ac) as u64),
            BilinearKind::Kron => (BilinearTally::Kron, 6 * (o_end - o_start) as u64),
            BilinearKind::Hadamard => (BilinearTally::Hadamard, 6 * (o_end - o_start) as u64),
        };
        self.counters.tally(tally, kernel, calls, flops_per_call);
    }

    fn exec_transpose(&mut self, input: BufId, shape: &[usize], perm: &[usize], out: BufId) {
        let (i_start, i_end) = self.value_range(input);
        let (o_start, o_end) = self.value_range(out);
        let n = i_end - i_start;
        self.counters.transposes += 1;
        // Value.
        self.transpose_staging[..n].copy_from_slice(&self.values[i_start..i_end]);
        permute::permute_into(
            &self.transpose_staging[..n],
            shape,
            perm,
            &mut self.values[o_start..o_end],
        );
        // Gradient blocks (a permutation is linear, so each block is permuted alike).
        if self.diff_mode == DiffMode::Gradient {
            let out_slots = self.grad_slots[out].clone();
            for (param, out_offset) in out_slots {
                if let Some(in_offset) = self.grad_offset(input, param) {
                    self.transpose_staging[..n]
                        .copy_from_slice(&self.grads[in_offset..in_offset + n]);
                    permute::permute_into(
                        &self.transpose_staging[..n],
                        shape,
                        perm,
                        &mut self.grads[out_offset..out_offset + n],
                    );
                } else {
                    for v in &mut self.grads[out_offset..out_offset + n] {
                        *v = Complex::zero();
                    }
                }
            }
        }
    }
}

/// The three bilinear bytecode operations share one gradient-propagation skeleton.
#[derive(Debug, Clone, Copy)]
enum BilinearKind {
    Matmul,
    Kron,
    Hadamard,
}

impl BilinearKind {
    #[allow(clippy::too_many_arguments)]
    fn apply<T: Float>(
        self,
        a: &[Complex<T>],
        ar: usize,
        ac: usize,
        b: &[Complex<T>],
        br: usize,
        bc: usize,
        out: &mut [Complex<T>],
        accumulate: bool,
        kernel: KernelSel,
        ws: &mut [T],
    ) {
        match self {
            BilinearKind::Matmul => {
                debug_assert_eq!(ac, br, "matmul inner dimensions");
                match (kernel, accumulate) {
                    (KernelSel::Scalar, false) => gemm::matmul_into(a, ar, ac, b, bc, out),
                    (KernelSel::Scalar, true) => gemm::matmul_acc_into(a, ar, ac, b, bc, out),
                    (KernelSel::Blocked, false) => {
                        gemm::matmul_blocked_into(a, ar, ac, b, bc, out, ws)
                    }
                    (KernelSel::Blocked, true) => {
                        gemm::matmul_blocked_acc_into(a, ar, ac, b, bc, out, ws)
                    }
                }
            }
            BilinearKind::Kron => match (kernel, accumulate) {
                (KernelSel::Scalar, false) => kron::kron_into(a, ar, ac, b, br, bc, out),
                (KernelSel::Scalar, true) => kron::kron_acc_into(a, ar, ac, b, br, bc, out),
                (KernelSel::Blocked, false) => kron::kron_blocked_into(a, ar, ac, b, br, bc, out),
                (KernelSel::Blocked, true) => {
                    kron::kron_blocked_acc_into(a, ar, ac, b, br, bc, out)
                }
            },
            BilinearKind::Hadamard => {
                // Element-wise loops have nothing to block; the tiers share one kernel.
                if accumulate {
                    gemm::hadamard_acc_into(a, b, out);
                } else {
                    gemm::hadamard_into(a, b, out);
                }
            }
        }
    }
}

/// Splits the value arena into three disjoint slices (two inputs and one output).
///
/// # Panics
///
/// Panics if the ranges overlap (the bytecode validator guarantees they never do).
fn three_slices<T>(
    arena: &mut [T],
    a: (usize, usize),
    b: (usize, usize),
    out: (usize, usize),
) -> (&[T], &[T], &mut [T]) {
    assert!(ranges_disjoint(a, out) && ranges_disjoint(b, out), "output overlaps an input");
    // Safety-free approach: obtain the output slice via a second mutable split and the
    // inputs via raw-index reads on the shared portion. We avoid unsafe by copying
    // pointers through split_at_mut ordering.
    // The simplest safe implementation: use pointers obtained from disjoint splits.
    let (out_slice, a_slice, b_slice) = unsafe {
        // SAFETY: the three ranges are pairwise disjoint (inputs may alias each other
        // only as immutable slices), all within bounds of `arena`.
        let base = arena.as_mut_ptr();
        let out_slice = std::slice::from_raw_parts_mut(base.add(out.0), out.1 - out.0);
        let a_slice = std::slice::from_raw_parts(base.add(a.0) as *const T, a.1 - a.0);
        let b_slice = std::slice::from_raw_parts(base.add(b.0) as *const T, b.1 - b.0);
        (out_slice, a_slice, b_slice)
    };
    (a_slice, b_slice, out_slice)
}

/// Splits the gradient arena (mutable, for one input-gradient block and the output block)
/// and the value arena (immutable, for the other operand's value).
fn grad_value_out<'g, 'v, T>(
    grads: &'g mut [T],
    values: &'v [T],
    grad_in: (usize, usize),
    value_in: (usize, usize),
    grad_out: (usize, usize),
) -> (&'g [T], &'v [T], &'g mut [T]) {
    assert!(ranges_disjoint(grad_in, grad_out), "gradient output overlaps its input");
    let (gin, gout) = unsafe {
        // SAFETY: `grad_in` and `grad_out` are disjoint ranges within `grads`.
        let base = grads.as_mut_ptr();
        let gin =
            std::slice::from_raw_parts(base.add(grad_in.0) as *const T, grad_in.1 - grad_in.0);
        let gout = std::slice::from_raw_parts_mut(base.add(grad_out.0), grad_out.1 - grad_out.0);
        (gin, gout)
    };
    (gin, &values[value_in.0..value_in.1], gout)
}

fn ranges_disjoint(a: (usize, usize), b: (usize, usize)) -> bool {
    a.1 <= b.0 || b.1 <= a.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{builders, gates, QuditCircuit};
    use qudit_network::{compile_network, TensorNetwork};

    fn vm_for(circuit: &QuditCircuit, diff: DiffMode) -> Tnvm<f64> {
        let program = compile_network(&TensorNetwork::from_circuit(circuit));
        Tnvm::new(&program, diff, &ExpressionCache::new())
    }

    fn random_params(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0
            })
            .collect()
    }

    #[test]
    fn bell_circuit_matches_reference() {
        let mut c = QuditCircuit::qubits(2);
        let h = c.cache_operation(gates::hadamard()).unwrap();
        let cx = c.cache_operation(gates::cnot()).unwrap();
        c.append_ref_constant(h, vec![0], vec![]).unwrap();
        c.append_ref_constant(cx, vec![0, 1], vec![]).unwrap();
        let mut vm = vm_for(&c, DiffMode::None);
        let u = vm.evaluate_unitary(&[]);
        let reference = c.unitary::<f64>(&[]).unwrap();
        assert!(u.max_elementwise_distance(&reference) < 1e-12);
    }

    #[test]
    fn parameterized_ladders_match_reference() {
        for (n, layers) in [(2usize, 1usize), (3, 2), (3, 4)] {
            let c = builders::pqc_qubit_ladder(n, layers).unwrap();
            let mut vm = vm_for(&c, DiffMode::None);
            let params = random_params(c.num_params(), (n * 10 + layers) as u64);
            let fast = vm.evaluate_unitary(&params);
            let slow = c.unitary::<f64>(&params).unwrap();
            assert!(
                fast.max_elementwise_distance(&slow) < 1e-10,
                "mismatch for {n} qubits, {layers} layers"
            );
            assert!(fast.is_unitary(1e-10));
        }
    }

    #[test]
    fn qutrit_ladder_matches_reference() {
        let c = builders::pqc_qutrit_ladder(2, 2).unwrap();
        let mut vm = vm_for(&c, DiffMode::None);
        let params = random_params(c.num_params(), 99);
        let fast = vm.evaluate_unitary(&params);
        let slow = c.unitary::<f64>(&params).unwrap();
        assert!(fast.max_elementwise_distance(&slow) < 1e-10);
    }

    #[test]
    fn reversed_location_and_nonadjacent_gates_match_reference() {
        let mut c = QuditCircuit::qubits(3);
        let cx = c.cache_operation(gates::cnot()).unwrap();
        let u3 = c.cache_operation(gates::u3()).unwrap();
        c.append_ref(u3, vec![1]).unwrap();
        c.append_ref_constant(cx, vec![2, 0], vec![]).unwrap();
        c.append_ref(u3, vec![2]).unwrap();
        c.append_ref_constant(cx, vec![1, 0], vec![]).unwrap();
        let params = random_params(c.num_params(), 5);
        let mut vm = vm_for(&c, DiffMode::None);
        let fast = vm.evaluate_unitary(&params);
        let slow = c.unitary::<f64>(&params).unwrap();
        assert!(fast.max_elementwise_distance(&slow) < 1e-11);
    }

    #[test]
    fn repeated_evaluation_is_consistent() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let mut vm = vm_for(&c, DiffMode::None);
        let p1 = random_params(c.num_params(), 1);
        let p2 = random_params(c.num_params(), 2);
        let a1 = vm.evaluate_unitary(&p1);
        let _ = vm.evaluate_unitary(&p2);
        let a1_again = vm.evaluate_unitary(&p1);
        assert!(a1.max_elementwise_distance(&a1_again) < 1e-14);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let c = builders::pqc_qubit_ladder(2, 1).unwrap();
        let params = random_params(c.num_params(), 7);
        let mut vm = vm_for(&c, DiffMode::Gradient);
        let result = vm.evaluate(&params);
        assert_eq!(result.gradient.len(), c.num_params());
        let h = 1e-6;
        for k in 0..c.num_params() {
            let mut plus = params.clone();
            let mut minus = params.clone();
            plus[k] += h;
            minus[k] -= h;
            let up = c.unitary::<f64>(&plus).unwrap();
            let um = c.unitary::<f64>(&minus).unwrap();
            let fd = up.sub(&um).unwrap().scale(qudit_tensor::C64::from_real(1.0 / (2.0 * h)));
            assert!(
                result.gradient[k].max_elementwise_distance(&fd) < 1e-5,
                "gradient mismatch for parameter {k}"
            );
        }
    }

    #[test]
    fn gradient_of_qutrit_circuit_matches_finite_differences() {
        let c = builders::pqc_qutrit_ladder(2, 1).unwrap();
        let params = random_params(c.num_params(), 21);
        let mut vm = vm_for(&c, DiffMode::Gradient);
        let result = vm.evaluate(&params);
        let h = 1e-6;
        for k in [0usize, 5, c.num_params() - 1] {
            let mut plus = params.clone();
            let mut minus = params.clone();
            plus[k] += h;
            minus[k] -= h;
            let up = c.unitary::<f64>(&plus).unwrap();
            let um = c.unitary::<f64>(&minus).unwrap();
            let fd = up.sub(&um).unwrap().scale(qudit_tensor::C64::from_real(1.0 / (2.0 * h)));
            assert!(
                result.gradient[k].max_elementwise_distance(&fd) < 1e-5,
                "gradient mismatch for parameter {k}"
            );
        }
    }

    #[test]
    fn gradient_of_constant_circuit_is_all_zero() {
        let c = builders::qft(3).unwrap();
        let mut vm = vm_for(&c, DiffMode::Gradient);
        let r = vm.evaluate(&[]);
        assert!(r.gradient.is_empty());
        assert!(r.unitary.is_unitary(1e-12));
    }

    #[test]
    fn shared_parameter_gradient_sums_contributions() {
        // Two RX gates bound to the *same* circuit parameter: dU/dθ must apply the
        // product rule across both occurrences. Build it by using a single parameterized
        // RX twice through a manually constructed circuit with one parameter.
        // The circuit API allocates distinct parameters per append, so emulate the
        // shared-parameter case with RZZ acting on overlapping wires instead:
        // U(θ) = RZZ(θ) on (0,1) then RZZ(θ') on (1,2); independence is the default, so
        // just validate gradient correctness on the overlapping-support composition.
        let mut c = QuditCircuit::qubits(3);
        let rzz = c.cache_operation(gates::rzz()).unwrap();
        c.append_ref(rzz, vec![0, 1]).unwrap();
        c.append_ref(rzz, vec![1, 2]).unwrap();
        let params = [0.4, -1.2];
        let mut vm = vm_for(&c, DiffMode::Gradient);
        let r = vm.evaluate(&params);
        let h = 1e-6;
        for k in 0..2 {
            let mut plus = params.to_vec();
            let mut minus = params.to_vec();
            plus[k] += h;
            minus[k] -= h;
            let fd = c
                .unitary::<f64>(&plus)
                .unwrap()
                .sub(&c.unitary::<f64>(&minus).unwrap())
                .unwrap()
                .scale(qudit_tensor::C64::from_real(1.0 / (2.0 * h)));
            assert!(r.gradient[k].max_elementwise_distance(&fd) < 1e-5);
        }
    }

    #[test]
    fn f32_precision_agrees_with_f64() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let cache = ExpressionCache::new();
        let mut vm64: Tnvm<f64> = Tnvm::new(&program, DiffMode::Gradient, &cache);
        let mut vm32: Tnvm<f32> = Tnvm::new(&program, DiffMode::Gradient, &cache);
        let params = random_params(c.num_params(), 3);
        let params32: Vec<f32> = params.iter().map(|&p| p as f32).collect();
        let r64 = vm64.evaluate(&params);
        let r32 = vm32.evaluate(&params32);
        assert!(r32.unitary.to_f64().max_elementwise_distance(&r64.unitary) < 1e-4);
        assert!(r32.gradient[0].to_f64().max_elementwise_distance(&r64.gradient[0]) < 1e-3);
    }

    #[test]
    fn memory_footprint_is_reported_and_modest() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let vm: Tnvm<f64> = Tnvm::new(&program, DiffMode::Gradient, &ExpressionCache::new());
        let bytes = vm.memory_bytes();
        assert!(bytes > 0);
        // The 3-qubit benchmarks must stay in the hundreds-of-kilobytes range (paper
        // reports ~211 KB for its shallow 3-qubit gradient workload).
        assert!(bytes < 2_000_000, "memory footprint unexpectedly large: {bytes} bytes");
    }

    #[test]
    fn cache_shared_across_vm_instantiations() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let cache = ExpressionCache::new();
        let _vm1: Tnvm<f64> = Tnvm::new(&program, DiffMode::Gradient, &cache);
        let misses_after_first = cache.stats().misses;
        let _vm2: Tnvm<f64> = Tnvm::new(&program, DiffMode::Gradient, &cache);
        assert_eq!(cache.stats().misses, misses_after_first, "second init should hit the cache");
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn load_retargets_vm_at_extended_program() {
        // The recompile-on-expansion path: one VM serves a sequence of growing
        // circuits, with results identical to freshly constructed VMs.
        let cache = ExpressionCache::new();
        let small = builders::pqc_qubit_ladder(2, 1).unwrap();
        let big = builders::pqc_qubit_ladder(2, 3).unwrap();
        let small_prog = compile_network(&TensorNetwork::from_circuit(&small));
        let big_prog = compile_network(&TensorNetwork::from_circuit(&big));

        let mut vm: Tnvm<f64> = Tnvm::new(&small_prog, DiffMode::Gradient, &cache);
        let p_small = random_params(small.num_params(), 4);
        let before = vm.evaluate(&p_small);

        vm.load(&big_prog, &cache);
        assert_eq!(vm.num_params(), big.num_params());
        let p_big = random_params(big.num_params(), 8);
        let extended = vm.evaluate(&p_big);
        let reference = big.unitary::<f64>(&p_big).unwrap();
        assert!(extended.unitary.max_elementwise_distance(&reference) < 1e-10);
        assert_eq!(extended.gradient.len(), big.num_params());

        // Loading back down also works, and reproduces the original result exactly.
        vm.load(&small_prog, &cache);
        let again = vm.evaluate(&p_small);
        assert!(again.unitary.max_elementwise_distance(&before.unitary) < 1e-14);
    }

    #[test]
    #[should_panic(expected = "TNVM expects")]
    fn wrong_parameter_count_panics() {
        let c = builders::pqc_qubit_ladder(2, 1).unwrap();
        let mut vm = vm_for(&c, DiffMode::None);
        let _ = vm.evaluate(&[0.0]);
    }

    #[test]
    fn blocked_backend_is_bit_identical_to_scalar() {
        // 3 qubits so every KRON (and its gradient accumulation) lowers blocked.
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let cache = ExpressionCache::new();
        let mut scalar =
            Tnvm::<f64>::with_backend(&program, DiffMode::Gradient, &cache, BackendKind::Scalar);
        let mut blocked =
            Tnvm::<f64>::with_backend(&program, DiffMode::Gradient, &cache, BackendKind::Blocked);
        assert!(blocked.plan().uses_blocked(), "3-qubit program must lower blocked kernels");
        let params = random_params(c.num_params(), 11);
        let rs = scalar.evaluate(&params);
        let rb = blocked.evaluate(&params);
        for (x, y) in rs.unitary.as_slice().iter().zip(rb.unitary.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        for (gs, gb) in rs.gradient.iter().zip(rb.gradient.iter()) {
            for (x, y) in gs.as_slice().iter().zip(gb.as_slice()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn counters_track_dispatch_and_cache() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let cache = ExpressionCache::new();
        let mut vm: Tnvm<f64> = Tnvm::new(&program, DiffMode::Gradient, &cache);
        let after_init = *vm.counters();
        assert!(after_init.cache_misses > 0, "cold cache must record misses");
        assert_eq!(after_init.evaluations, 0);
        let params = random_params(c.num_params(), 17);
        let _ = vm.evaluate(&params);
        let taken = vm.take_counters();
        assert_eq!(taken.evaluations, 1);
        assert!(taken.writes > after_init.writes, "dynamic WRITEs must count");
        assert!(taken.kron[0] + taken.kron[1] > 0, "a ladder circuit KRONs");
        assert!(vm.counters().is_empty(), "take_counters must reset");
    }

    #[test]
    fn tiers_split_identical_dispatch_totals_differently() {
        let c = builders::pqc_qubit_ladder(3, 2).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let cache = ExpressionCache::new();
        let mut scalar =
            Tnvm::<f64>::with_backend(&program, DiffMode::Gradient, &cache, BackendKind::Scalar);
        let mut blocked =
            Tnvm::<f64>::with_backend(&program, DiffMode::Gradient, &cache, BackendKind::Blocked);
        scalar.take_counters();
        blocked.take_counters();
        let params = random_params(c.num_params(), 17);
        let _ = scalar.evaluate(&params);
        let _ = blocked.evaluate(&params);
        let s = *scalar.counters();
        let b = *blocked.counters();
        assert_eq!(s.matmul[0] + s.matmul[1], b.matmul[0] + b.matmul[1]);
        assert_eq!(s.kron[0] + s.kron[1], b.kron[0] + b.kron[1]);
        assert_eq!(s.matmul[1] + s.kron[1], 0, "scalar tier never dispatches blocked");
        assert!(b.kron[1] > 0, "3-qubit KRON outputs must lower blocked");
        assert_eq!(s.writes, b.writes);
        assert_eq!(s.transposes, b.transposes);
    }

    #[test]
    fn memory_bytes_accounts_for_kernel_workspace() {
        // 6 qubits: 64-dim operands, so the MATMULs lower to the panel-packed gemm
        // and the plan requests a real workspace.
        let c = builders::pqc_qubit_ladder(6, 1).unwrap();
        let program = compile_network(&TensorNetwork::from_circuit(&c));
        let cache = ExpressionCache::new();
        let scalar =
            Tnvm::<f64>::with_backend(&program, DiffMode::None, &cache, BackendKind::Scalar);
        let blocked =
            Tnvm::<f64>::with_backend(&program, DiffMode::None, &cache, BackendKind::Blocked);
        assert_eq!(scalar.plan().workspace_scalars, 0);
        assert!(blocked.plan().workspace_scalars > 0);
        assert!(
            blocked.memory_bytes()
                == scalar.memory_bytes()
                    + blocked.plan().workspace_scalars * std::mem::size_of::<f64>(),
            "memory report must include the tier workspace"
        );
    }

    #[test]
    fn load_keeps_backend_and_relowers() {
        let cache = ExpressionCache::new();
        let small = builders::pqc_qubit_ladder(2, 1).unwrap();
        let big = builders::pqc_qubit_ladder(3, 2).unwrap();
        let small_prog = compile_network(&TensorNetwork::from_circuit(&small));
        let big_prog = compile_network(&TensorNetwork::from_circuit(&big));
        let mut vm =
            Tnvm::<f64>::with_backend(&small_prog, DiffMode::None, &cache, BackendKind::Blocked);
        assert_eq!(vm.backend(), BackendKind::Blocked);
        vm.load(&big_prog, &cache);
        assert_eq!(vm.backend(), BackendKind::Blocked);
        assert!(vm.plan().uses_blocked(), "re-lowering must pick up the larger shapes");
        let params = random_params(big.num_params(), 3);
        let u = vm.evaluate_unitary(&params);
        let reference = big.unitary::<f64>(&params).unwrap();
        assert!(u.max_elementwise_distance(&reference) < 1e-10);
    }
}
