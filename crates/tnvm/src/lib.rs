//! # qudit-tnvm
//!
//! The Tensor Network Virtual Machine (TNVM) runtime of the OpenQudit reproduction.
//!
//! A [`Tnvm`] is instantiated once per compiled circuit (choosing the numerical precision
//! `f32`/`f64` and the differentiation mode), performs all expensive preparation up front
//! (arena allocation, eager expression compilation through the shared
//! [`qudit_qvm::ExpressionCache`], constant-section execution), and then serves fast
//! repeated [`Tnvm::evaluate`] calls inside the numerical optimization loop.
//!
//! ```
//! use qudit_circuit::builders;
//! use qudit_network::{compile_network, TensorNetwork};
//! use qudit_qvm::{DiffMode, ExpressionCache};
//! use qudit_tnvm::Tnvm;
//!
//! // (1) Ahead-of-time compilation (once per PQC).
//! let circuit = builders::pqc_qubit_ladder(3, 2)?;
//! let network = TensorNetwork::from_circuit(&circuit);
//! let code = compile_network(&network);
//!
//! // (2) TNVM initialization.
//! let cache = ExpressionCache::new();
//! let mut tnvm: Tnvm<f64> = Tnvm::new(&code, DiffMode::Gradient, &cache);
//!
//! // (3) Fast evaluation loop.
//! let params = vec![0.1; circuit.num_params()];
//! let result = tnvm.evaluate(&params);
//! assert!(result.unitary.is_unitary(1e-10));
//! assert_eq!(result.gradient.len(), circuit.num_params());
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

//!
//! ## Execution backends
//!
//! [`Tnvm::new`] lowers the program through the process-default execution tier
//! ([`BackendKind::from_env`], driven by the `OPENQUDIT_TNVM_BACKEND` environment
//! variable); [`Tnvm::with_backend`] selects a tier explicitly. See [`backend`] for the
//! lowering architecture and the per-tier determinism contract.

pub mod backend;
pub mod counters;
pub mod vm;

pub use backend::{
    Backend, BackendKind, BlockedCpuBackend, ExecPlan, KernelSel, ScalarBackend, TargetDescriptor,
    BACKEND_ENV_VAR,
};
pub use counters::KernelCounters;
pub use vm::{EvalResult, Tnvm};
