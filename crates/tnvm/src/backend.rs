//! Execution-backend lowering: from shape-annotated bytecode to an executable plan.
//!
//! The TNVM separates *what* to compute (the [`TnvmProgram`] bytecode) from *how* to
//! compute it. A [`Backend`] consumes the shape-annotated program and lowers it to an
//! [`ExecPlan`]: one kernel selection per instruction plus the workspace the selected
//! kernels need. The interpreter in [`crate::vm`] then drives the plan, dispatching each
//! bilinear instruction to the scalar reference kernels or to the blocked
//! structure-of-arrays kernels in `qudit-tensor`.
//!
//! Two tiers ship today:
//!
//! * [`ScalarBackend`] — the original interpreter's kernel choices, bit-for-bit. Every
//!   instruction runs the simple scalar kernels. This is the reference tier.
//! * [`BlockedCpuBackend`] — selects `gemm::matmul_blocked_*` / `kron::kron_blocked_*`
//!   for instructions whose operand shapes clear the [`TargetDescriptor`] thresholds and
//!   falls back to scalar below them. The blocked kernels are reassociation-free (same
//!   per-element accumulation order, zero-skip, and complex-multiply expansion as the
//!   scalar kernels), so this tier is *also* bit-identical to the reference — the
//!   conformance suite asserts exact bit equality, and the per-tier determinism contract
//!   documented in `crates/tnvm/README.md` budgets a ≤1e-12 tolerance only for future
//!   tiers that reassociate (SIMD horizontal sums, GPU).
//!
//! Backend selection threads through the whole stack as a [`BackendKind`] value
//! (instantiation, synthesis frontier workers, compiler passes, benches). The process
//! default comes from the `OPENQUDIT_TNVM_BACKEND` environment variable, which is how
//! the CI matrix runs the full test suite once per tier.

use qudit_network::{TnvmOp, TnvmProgram};
use qudit_tensor::gemm;

/// Environment variable consulted by [`BackendKind::from_env`] (values: `scalar`,
/// `blocked`).
pub const BACKEND_ENV_VAR: &str = "OPENQUDIT_TNVM_BACKEND";

/// Identifies an execution tier. This is the value threaded through configuration
/// structs; [`BackendKind::instance`] resolves it to the tier implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The scalar reference interpreter (tier 0).
    Scalar,
    /// Blocked/structure-of-arrays CPU kernels with scalar fallback (tier 1).
    Blocked,
}

impl BackendKind {
    /// All registered tiers, in ascending capability order.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Scalar, BackendKind::Blocked]
    }

    /// Parses a backend name as accepted by `OPENQUDIT_TNVM_BACKEND`.
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "blocked" => Some(BackendKind::Blocked),
            _ => None,
        }
    }

    /// The process-wide default tier: `OPENQUDIT_TNVM_BACKEND` when set to a valid
    /// backend name, otherwise [`BackendKind::Scalar`].
    ///
    /// An *invalid* value still falls back to the scalar tier — a long-lived server
    /// must not die over a typo in its environment — but emits a one-time stderr
    /// warning naming the rejected value and the accepted set, so the
    /// misconfiguration is visible instead of silently running the wrong tier.
    pub fn from_env() -> BackendKind {
        match std::env::var(BACKEND_ENV_VAR) {
            Ok(value) => match BackendKind::parse(&value) {
                Some(kind) => kind,
                None => {
                    warn_invalid_env(&value);
                    BackendKind::Scalar
                }
            },
            Err(_) => BackendKind::Scalar,
        }
    }

    /// Stable identifier used in reports and bench output.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Blocked => "blocked",
        }
    }

    /// Resolves the kind to its (stateless) tier implementation.
    pub fn instance(self) -> &'static dyn Backend {
        match self {
            BackendKind::Scalar => &ScalarBackend,
            BackendKind::Blocked => &BLOCKED_CPU,
        }
    }
}

/// The warning text for an invalid `OPENQUDIT_TNVM_BACKEND` value: names the value
/// and the accepted set. Factored out so tests can pin the message without touching
/// the process environment.
pub fn invalid_backend_env_warning(value: &str) -> String {
    format!(
        "warning: ignoring invalid {BACKEND_ENV_VAR}={value:?}; \
         accepted values: scalar, blocked (falling back to scalar)"
    )
}

/// Emits [`invalid_backend_env_warning`] to stderr the first time it is called in
/// this process; later calls are no-ops. Returns whether this call emitted —
/// [`BackendKind::default`] runs once per configuration-struct construction, so an
/// unguarded warning would flood a server's log.
pub fn warn_invalid_env(value: &str) -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    let first = !WARNED.swap(true, Ordering::Relaxed);
    if first {
        eprintln!("{}", invalid_backend_env_warning(value));
    }
    first
}

impl Default for BackendKind {
    /// Defaults to the environment-selected tier so every configuration struct deriving
    /// `Default` (and therefore every CI invocation) honors `OPENQUDIT_TNVM_BACKEND`
    /// without explicit plumbing at each construction site.
    fn default() -> Self {
        BackendKind::from_env()
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Describes a tier's capabilities: the knobs lowering uses to pick kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetDescriptor {
    /// Columns packed per structure-of-arrays panel by the blocked gemm. Consumers
    /// above the TNVM read this too: `qudit-optimize` runs its normal-equations
    /// assembly this many accumulator lanes wide (1 = the serial reference loop).
    pub panel_columns: usize,
    /// Minimum `m·n·k` flop volume for a MATMUL to lower to the blocked kernel.
    pub min_blocked_flops: usize,
    /// Minimum output element count for a KRON to lower to the blocked kernel.
    pub min_blocked_kron: usize,
}

impl TargetDescriptor {
    /// The scalar reference tier: thresholds at `usize::MAX` so nothing ever lowers to
    /// a blocked kernel.
    pub fn scalar() -> TargetDescriptor {
        TargetDescriptor {
            panel_columns: 1,
            min_blocked_flops: usize::MAX,
            min_blocked_kron: usize::MAX,
        }
    }

    /// The blocked CPU tier. Thresholds were measured on the pinned `report_synthesis`
    /// workloads with rotating operand pools (hot-cache single-buffer timings
    /// mislead): the restructured KRON beats the index-arithmetic scalar loop at
    /// every circuit-relevant shape (0.5–0.75× from 2×2 ⊗ 2×2 upward), while panel
    /// packing for MATMUL only amortizes once operands reach 64-dimensional
    /// (6-qubit) buffers — below that the scalar ikj kernel keeps output rows
    /// register-resident and is already optimal.
    pub fn blocked_cpu() -> TargetDescriptor {
        TargetDescriptor {
            panel_columns: gemm::SOA_PANEL,
            min_blocked_flops: 64 * 64 * 64,
            min_blocked_kron: 16,
        }
    }
}

/// Which kernel family an instruction was lowered to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelSel {
    /// The scalar reference kernels.
    Scalar,
    /// The blocked structure-of-arrays kernels.
    Blocked,
}

/// An executable plan: per-instruction kernel selections plus workspace requirements.
///
/// The two selection vectors are index-aligned with the program's `constant_ops` and
/// `dynamic_ops`. `workspace_scalars` is the length (in `T` scalars, not complex
/// elements) of the kernel workspace the VM must provide to blocked gemm calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecPlan {
    /// Kernel selection for each constant-section instruction.
    pub constant_kernels: Vec<KernelSel>,
    /// Kernel selection for each dynamic-section instruction.
    pub dynamic_kernels: Vec<KernelSel>,
    /// Required kernel workspace length in scalars (0 when everything is scalar).
    pub workspace_scalars: usize,
}

impl ExecPlan {
    /// True if at least one instruction lowered to a blocked kernel.
    pub fn uses_blocked(&self) -> bool {
        self.constant_kernels
            .iter()
            .chain(self.dynamic_kernels.iter())
            .any(|k| *k == KernelSel::Blocked)
    }
}

/// An execution tier: lowers shape-annotated bytecode to an [`ExecPlan`].
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Stable tier identifier (matches [`BackendKind::name`]).
    fn name(&self) -> &'static str;

    /// The tier's capability description.
    fn descriptor(&self) -> TargetDescriptor;

    /// Lowers `program` to an executable plan.
    ///
    /// The default implementation applies the shape thresholds in
    /// [`Backend::descriptor`] uniformly: MATMUL lowers to the blocked gemm when its
    /// `m·n·k` volume reaches `min_blocked_flops`, KRON when its output element count
    /// reaches `min_blocked_kron`; WRITE, HADAMARD, and TRANSPOSE always stay scalar
    /// (they are bandwidth-bound copies or element-wise loops with nothing to block).
    fn lower(&self, program: &TnvmProgram) -> ExecPlan {
        let desc = self.descriptor();
        let select = |op: &TnvmOp| -> KernelSel {
            match op {
                TnvmOp::Matmul { a, b, out } => {
                    let m = program.buffers[*a].rows;
                    let k = program.buffers[*a].cols;
                    let n = program.buffers[*b].cols;
                    debug_assert_eq!(program.buffers[*out].rows, m);
                    if m * n * k >= desc.min_blocked_flops {
                        KernelSel::Blocked
                    } else {
                        KernelSel::Scalar
                    }
                }
                TnvmOp::Kron { a, b, out } => {
                    let _ = (a, b);
                    if program.buffers[*out].len() >= desc.min_blocked_kron {
                        KernelSel::Blocked
                    } else {
                        KernelSel::Scalar
                    }
                }
                _ => KernelSel::Scalar,
            }
        };
        let constant_kernels: Vec<KernelSel> = program.constant_ops.iter().map(select).collect();
        let dynamic_kernels: Vec<KernelSel> = program.dynamic_ops.iter().map(select).collect();
        // Workspace: the maximum over blocked MATMULs of the packed-panel length.
        let mut workspace_scalars = 0usize;
        for (op, sel) in program
            .constant_ops
            .iter()
            .zip(constant_kernels.iter())
            .chain(program.dynamic_ops.iter().zip(dynamic_kernels.iter()))
        {
            if let (TnvmOp::Matmul { a, .. }, KernelSel::Blocked) = (op, sel) {
                let k = program.buffers[*a].cols;
                workspace_scalars = workspace_scalars.max(gemm::blocked_workspace_len(k));
            }
        }
        ExecPlan { constant_kernels, dynamic_kernels, workspace_scalars }
    }
}

/// Tier 0: the original scalar interpreter, extracted as the bit-for-bit reference.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn descriptor(&self) -> TargetDescriptor {
        TargetDescriptor::scalar()
    }
}

/// Tier 1: blocked/structure-of-arrays CPU kernels with scalar fallback below the
/// descriptor thresholds.
#[derive(Debug, Clone, Copy)]
pub struct BlockedCpuBackend {
    /// The capability description lowering applies.
    pub target: TargetDescriptor,
}

impl Default for BlockedCpuBackend {
    fn default() -> Self {
        BlockedCpuBackend { target: TargetDescriptor::blocked_cpu() }
    }
}

static BLOCKED_CPU: BlockedCpuBackend = BlockedCpuBackend {
    target: TargetDescriptor {
        panel_columns: gemm::SOA_PANEL,
        min_blocked_flops: 64 * 64 * 64,
        min_blocked_kron: 16,
    },
};

impl Backend for BlockedCpuBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn descriptor(&self) -> TargetDescriptor {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(BackendKind::parse("scalar"), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse(" Blocked "), Some(BackendKind::Blocked));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::parse(""), None);
    }

    #[test]
    fn names_round_trip() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.instance().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn scalar_descriptor_never_blocks() {
        let desc = ScalarBackend.descriptor();
        assert_eq!(desc.min_blocked_flops, usize::MAX);
        assert_eq!(desc.min_blocked_kron, usize::MAX);
    }

    #[test]
    fn invalid_backend_names_fall_back_with_a_named_warning() {
        // The parse layer `from_env` funnels through: unknown names reject...
        assert_eq!(BackendKind::parse("blockedd"), None);
        assert_eq!(BackendKind::parse(""), None);
        // ...and the warning names the rejected value and the accepted set.
        let warning = invalid_backend_env_warning("blockedd");
        assert!(warning.contains(BACKEND_ENV_VAR), "{warning}");
        assert!(warning.contains("\"blockedd\""), "{warning}");
        assert!(warning.contains("scalar") && warning.contains("blocked"), "{warning}");
    }

    #[test]
    fn invalid_backend_warning_fires_once_per_process() {
        // Only the first call emits; the guard is process-wide so a server that
        // constructs thousands of configs logs the misconfiguration exactly once.
        let first = warn_invalid_env("bogus-tier");
        let second = warn_invalid_env("bogus-tier");
        assert!(first || !second, "a later call must never emit after the first");
        assert!(!warn_invalid_env("another-bogus-tier"));
    }

    #[test]
    fn blocked_descriptor_thresholds() {
        let desc = BackendKind::Blocked.instance().descriptor();
        assert_eq!(desc.panel_columns, gemm::SOA_PANEL);
        assert_eq!(desc, TargetDescriptor::blocked_cpu());
        assert!(desc.min_blocked_flops <= 64 * 64 * 64, "64-dim matmuls must lower blocked");
        assert!(
            desc.min_blocked_flops > 32 * 32 * 32,
            "sub-64-dim matmuls must stay scalar (the ikj kernel wins there)"
        );
        assert!(2 * 2 * 2 * 2 >= desc.min_blocked_kron, "2x2 kron outputs must lower blocked");
    }
}
