//! Deterministic per-VM kernel-dispatch accounting.
//!
//! Every [`Tnvm`](crate::Tnvm) tallies how often each bytecode operation dispatched to
//! each [`KernelSel`] kernel family (plus a static flop estimate and its expression-cache
//! lookup outcomes) into a plain [`KernelCounters`] value — **local** to the VM, not a
//! shared registry. That locality is what keeps the numbers deterministic under the
//! schedule-independent early-stop discipline: parallel search workers accumulate
//! counters per candidate, the join point filters them to the deterministic prefix, and
//! only the surviving sums are recorded into a
//! [`TraceRegistry`].
//!
//! Dispatch counts derive purely from program structure and the tier's lowering plan, so
//! they are byte-identical across same-seed runs *within* a tier; across tiers they
//! legitimately differ (that is the point — they answer "which kernels did this tier
//! run"), which is why reports emit them in a separate `kernel_metrics` section from the
//! tier-invariant algorithm counters.

use qudit_trace::TraceRegistry;

use crate::backend::KernelSel;

/// Index of a kernel family in the per-`KernelSel` counter arrays.
fn sel_index(sel: KernelSel) -> usize {
    match sel {
        KernelSel::Scalar => 0,
        KernelSel::Blocked => 1,
    }
}

/// Monotone dispatch/flop/cache counts accumulated by one VM (or merged across several).
///
/// Array fields are indexed by [`KernelSel`] (0 = scalar, 1 = blocked).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// MATMUL kernel invocations (value + gradient product-rule calls) per family.
    pub matmul: [u64; 2],
    /// KRON kernel invocations per family.
    pub kron: [u64; 2],
    /// HADAMARD kernel invocations (the tiers share one element-wise kernel).
    pub hadamard: u64,
    /// WRITE instructions executed (compiled-expression runs).
    pub writes: u64,
    /// TRANSPOSE instructions executed.
    pub transposes: u64,
    /// Static flop estimate per kernel family (8·m·n·k per MATMUL call,
    /// 6·output-elements per KRON/HADAMARD call).
    pub flops: [u64; 2],
    /// Full [`Tnvm::evaluate`](crate::Tnvm::evaluate) calls.
    pub evaluations: u64,
    /// Expression-cache lookups satisfied from the cache during (re)initialization.
    pub cache_hits: u64,
    /// Expression-cache lookups that had to compile.
    pub cache_misses: u64,
}

impl KernelCounters {
    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &KernelCounters) {
        for i in 0..2 {
            self.matmul[i] += other.matmul[i];
            self.kron[i] += other.kron[i];
            self.flops[i] += other.flops[i];
        }
        self.hadamard += other.hadamard;
        self.writes += other.writes;
        self.transposes += other.transposes;
        self.evaluations += other.evaluations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// True if no event has been counted.
    pub fn is_empty(&self) -> bool {
        *self == KernelCounters::default()
    }

    /// Tallies `calls` dispatches of `sel` for one bilinear instruction kind, with a
    /// static per-call flop estimate.
    pub fn tally(&mut self, kind: BilinearTally, sel: KernelSel, calls: u64, flops_per_call: u64) {
        let i = sel_index(sel);
        match kind {
            BilinearTally::Matmul => self.matmul[i] += calls,
            BilinearTally::Kron => self.kron[i] += calls,
            BilinearTally::Hadamard => self.hadamard += calls,
        }
        self.flops[i] += calls * flops_per_call;
    }

    /// Records the counts into `trace` under the `tnvm.*` namespace (kernel-dispatch
    /// counts, tier-variant) and the `cache.*` namespace (expression-cache lookups,
    /// tier-invariant). Zero counts are skipped, so snapshots stay compact while still
    /// being deterministic (the same fields are nonzero in every same-seed run).
    pub fn record_into(&self, trace: &TraceRegistry) {
        if !trace.enabled() || self.is_empty() {
            return;
        }
        let sel_name = |i: usize| if i == 0 { "scalar" } else { "blocked" };
        for i in 0..2 {
            if self.matmul[i] > 0 {
                trace.add(&format!("tnvm.dispatch.matmul.{}", sel_name(i)), self.matmul[i]);
            }
            if self.kron[i] > 0 {
                trace.add(&format!("tnvm.dispatch.kron.{}", sel_name(i)), self.kron[i]);
            }
            if self.flops[i] > 0 {
                trace.add(&format!("tnvm.flops.{}", sel_name(i)), self.flops[i]);
            }
        }
        if self.hadamard > 0 {
            trace.add("tnvm.dispatch.hadamard", self.hadamard);
        }
        if self.writes > 0 {
            trace.add("tnvm.dispatch.write", self.writes);
        }
        if self.transposes > 0 {
            trace.add("tnvm.dispatch.transpose", self.transposes);
        }
        if self.evaluations > 0 {
            trace.add("tnvm.evaluations", self.evaluations);
        }
        if self.cache_hits > 0 {
            trace.add("cache.hits", self.cache_hits);
        }
        if self.cache_misses > 0 {
            trace.add("cache.misses", self.cache_misses);
        }
    }
}

/// Which bilinear instruction a [`KernelCounters::tally`] call accounts for.
#[derive(Debug, Clone, Copy)]
pub enum BilinearTally {
    /// A MATMUL dispatch.
    Matmul,
    /// A KRON dispatch.
    Kron,
    /// A HADAMARD dispatch.
    Hadamard,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = KernelCounters { matmul: [2, 1], evaluations: 3, ..Default::default() };
        let b = KernelCounters { matmul: [1, 1], cache_hits: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.matmul, [3, 2]);
        assert_eq!(a.evaluations, 3);
        assert_eq!(a.cache_hits, 5);
    }

    #[test]
    fn record_skips_zeros_and_namespaces_keys() {
        let trace = TraceRegistry::new();
        let mut c = KernelCounters::default();
        c.tally(BilinearTally::Matmul, KernelSel::Blocked, 2, 100);
        c.cache_hits = 7;
        c.record_into(&trace);
        let counters = trace.counters();
        assert_eq!(counters["tnvm.dispatch.matmul.blocked"], 2);
        assert_eq!(counters["tnvm.flops.blocked"], 200);
        assert_eq!(counters["cache.hits"], 7);
        assert!(!counters.contains_key("tnvm.dispatch.matmul.scalar"));
        assert!(!counters.contains_key("cache.misses"));
    }

    #[test]
    fn empty_counters_record_nothing() {
        let trace = TraceRegistry::new();
        KernelCounters::default().record_into(&trace);
        assert!(trace.counters().is_empty());
    }
}
